# Development entry points. `make check` is the CI gate: build, vet, the
# full test suite, the same suite under the race detector — the scenario
# runner is the repo's first production concurrency, so every change runs
# race-clean before it lands — and a one-iteration benchmark smoke so the
# bench bodies compile and run on every verify. Byte-identity of the
# committed results/ tree is its own gate, `make verify-results`: it is
# minutes of simulation, so it runs on demand (always after touching
# anything on the simulation path) rather than inside `make check`.

GO ?= go

.PHONY: build test vet lint race check bench benchjson determinism verify-results figures metrics-smoke serve-smoke service-smoke net-smoke diffusion-smoke obs-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt is checked, not applied: CI must fail on unformatted files, not
# silently rewrite them. staticcheck runs when installed (the container
# image does not bake it in; installing is a no-network environment
# concern, so its absence downgrades to a notice, never a pass/fail flip
# between machines with different toolboxes).
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi

race:
	$(GO) test -race ./...

check: build lint test race bench serve-smoke service-smoke net-smoke diffusion-smoke obs-smoke determinism

# Benchmark smoke: every benchmark runs exactly one iteration. Catches
# bench bodies that rot (they only compile under -bench) without paying
# full measurement time; real numbers come from `make benchjson`.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Refresh the committed benchmark record (ns/op, allocs/op, events/sec).
benchjson:
	$(GO) run ./cmd/figures -benchjson BENCH_results.json

# Sharded-scheduler determinism gate, named so `make check` runs it even
# when the cached `race` target is skipped: the same scenario at shards
# {1,2,4,8} x GOMAXPROCS {1,4} under the race detector must produce an
# identical Result, metric snapshot and trace hash, and the classic
# -shards 1 path must stay allocation-free in steady state. The alloc
# gate runs without -race (instrumentation perturbs allocation counts);
# -count=1 defeats the test cache so the gates always execute.
determinism:
	$(GO) test -race -count=1 -run 'TestShardedDeterminism|TestDiffusionShardedDeterminism|TestShardsAutoResolve' ./internal/experiment
	$(GO) test -count=1 -run TestClassicScenarioSteadyStateAllocFree ./internal/experiment

# Metrics smoke: one small Wave2D scenario with the Prometheus export on
# stderr, asserting the acceptance-critical series are present and
# non-empty. Catches wiring rot (a renamed series, a dropped collector)
# in seconds without simulating the full figure set.
metrics-smoke:
	@out=$$($(GO) run ./cmd/lbsim -app wave2d -cores 8 -strategy refine -bg -scale 0.1 -metrics - 2>&1 >/dev/null); \
	if [ -z "$$out" ]; then echo "metrics-smoke: empty -metrics output"; exit 1; fi; \
	for series in charm_pe_background_seconds_total charm_lb_step_migrations \
			charm_lb_migrations_total machine_core_busy_seconds sim_events_total runner_scenarios_total; do \
		echo "$$out" | grep -q "^$$series{" || echo "$$out" | grep -q "^$$series " || { \
			echo "metrics-smoke: series $$series missing from export"; exit 1; }; \
	done; \
	echo "metrics-smoke: export OK ($$(echo "$$out" | grep -c '^[a-z]') samples)"

# Network smoke: one lossy straggler-link scenario with the Prometheus
# export on stderr, asserting the unreliable-network series are present
# and that the seeded lottery actually lost transmissions. Catches wiring
# rot between the -droppct/-straggle/-netseed flags, Scenario.Net and the
# xnet instrumentation in seconds.
net-smoke:
	@out=$$($(GO) run ./cmd/lbsim -app wave2d -cores 8 -strategy refine -bg \
		-droppct 20 -straggle 1:4 -netseed 7 -scale 0.1 -metrics - 2>&1 >/dev/null); \
	if [ -z "$$out" ]; then echo "net-smoke: empty -metrics output"; exit 1; fi; \
	for series in xnet_drops_total xnet_retransmits_total xnet_link_busy_seconds; do \
		echo "$$out" | grep -q "^$$series " || { \
			echo "net-smoke: series $$series missing from export"; exit 1; }; \
	done; \
	drops=$$(echo "$$out" | sed -n 's/^xnet_drops_total //p'); \
	case "$$drops" in ''|0) echo "net-smoke: no drops at -droppct 20 (got '$$drops')"; exit 1;; esac; \
	echo "net-smoke: unreliable network OK ($$drops drops)"

# Diffusion smoke: one small Wave2D scenario under the distributed
# diffusion balancer with the Prometheus export on stderr, asserting the
# protocol actually ran (nonzero exchange rounds) and the per-PE
# planning-state gauges are wired. Catches wiring rot between -strategy
# diffusion, the charm protocol driver and its instrumentation in
# seconds, without the full Figure 7 run.
diffusion-smoke:
	@out=$$($(GO) run ./cmd/lbsim -app wave2d -cores 8 -strategy diffusion -bg -scale 0.1 -metrics - 2>&1 >/dev/null); \
	if [ -z "$$out" ]; then echo "diffusion-smoke: empty -metrics output"; exit 1; fi; \
	for series in charm_lb_rounds_total charm_lb_peak_state_bytes charm_lb_migrations_total; do \
		echo "$$out" | grep -q "^$$series{" || { \
			echo "diffusion-smoke: series $$series missing from export"; exit 1; }; \
	done; \
	rounds=$$(echo "$$out" | sed -n 's/^charm_lb_rounds_total{[^}]*} //p'); \
	case "$$rounds" in ''|0) echo "diffusion-smoke: no exchange rounds ran (got '$$rounds')"; exit 1;; esac; \
	echo "diffusion-smoke: distributed protocol OK ($$rounds rounds)"

# Telemetry smoke: boot lbsim with the embedded server on a free port,
# scrape every JSON/Prometheus endpoint while -serve-wait holds the run
# open, and assert the acceptance series/fields answer. Catches wiring
# rot between the flags, the server and the instrumented layers.
serve-smoke:
	@$(GO) build -o /tmp/lbsim-serve-smoke ./cmd/lbsim; \
	log=$$(mktemp); \
	/tmp/lbsim-serve-smoke -app wave2d -cores 8 -strategy refine -bg -scale 0.1 \
		-serve 127.0.0.1:0 -serve-wait 15s >/dev/null 2>"$$log" & \
	pid=$$!; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's|^telemetry: serving on http://\([^/]*\)/$$|\1|p' "$$log"); \
		[ -n "$$addr" ] && break; \
		kill -0 $$pid 2>/dev/null || { echo "serve-smoke: lbsim exited early"; cat "$$log"; rm -f "$$log"; exit 1; }; \
		sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "serve-smoke: no serving address in stderr"; cat "$$log"; kill $$pid; rm -f "$$log"; exit 1; }; \
	fail=0; \
	metrics=$$(curl -sf "http://$$addr/metrics") || fail=1; \
	for series in sim_events_total charm_lb_migrations_total machine_core_busy_seconds; do \
		echo "$$metrics" | grep -q "^$$series" || { echo "serve-smoke: /metrics missing $$series"; fail=1; }; \
	done; \
	run=$$(curl -sf "http://$$addr/api/v1/run") || fail=1; \
	echo "$$run" | grep -q '"scenarios_total"' || { echo "serve-smoke: /api/v1/run missing scenarios_total"; fail=1; }; \
	steps=$$(curl -sf "http://$$addr/api/v1/lbsteps") || fail=1; \
	echo "$$steps" | grep -q '"steps"' || { echo "serve-smoke: /api/v1/lbsteps missing steps"; fail=1; }; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' "http://$$addr/api/run"); \
	[ "$$code" = "308" ] || { echo "serve-smoke: legacy /api/run answered $$code, want 308"; fail=1; }; \
	curl -sf "http://$$addr/" | grep -q '<!DOCTYPE html>' || { echo "serve-smoke: dashboard missing"; fail=1; }; \
	hcode=$$(curl -s -o /dev/null -w '%{http_code}' "http://$$addr/healthz"); \
	[ "$$hcode" = "200" ] || { echo "serve-smoke: /healthz answered $$hcode, want 200"; fail=1; }; \
	rcode=$$(curl -s -o /dev/null -w '%{http_code}' "http://$$addr/readyz"); \
	[ "$$rcode" = "200" ] || { echo "serve-smoke: /readyz answered $$rcode, want 200"; fail=1; }; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -f "$$log"; \
	[ $$fail -eq 0 ] || exit 1; \
	echo "serve-smoke: all endpoints OK on $$addr"

# Scenario-service smoke: boot lbsim as an evaluation server (-serve plus
# -store), submit the same Spec twice through -submit, and assert the
# acceptance contract of the content-addressed cache: the second run says
# "cache hit", lists byte-identical artifact hashes, and adds zero new
# simulation events to the live sim_events_total series.
service-smoke:
	@$(GO) build -o /tmp/lbsim-service-smoke ./cmd/lbsim; \
	log=$$(mktemp); storedir=$$(mktemp -d); \
	/tmp/lbsim-service-smoke -app jacobi2d -cores 4 -scale 0.05 \
		-serve 127.0.0.1:0 -store "$$storedir" -serve-wait 60s >/dev/null 2>"$$log" & \
	pid=$$!; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's|^telemetry: serving on http://\([^/]*\)/$$|\1|p' "$$log"); \
		[ -n "$$addr" ] && break; \
		kill -0 $$pid 2>/dev/null || { echo "service-smoke: server exited early"; cat "$$log"; rm -rf "$$log" "$$storedir"; exit 1; }; \
		sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "service-smoke: no serving address in stderr"; cat "$$log"; kill $$pid; rm -rf "$$log" "$$storedir"; exit 1; }; \
	fail=0; \
	first=$$(/tmp/lbsim-service-smoke -app wave2d -cores 8 -strategy refine -bg -scale 0.05 \
		-submit "http://$$addr") || { echo "service-smoke: first submit failed"; fail=1; }; \
	echo "$$first" | grep -q "(computed, spec" || { echo "service-smoke: first submit was not computed"; fail=1; }; \
	events1=$$(curl -sf "http://$$addr/metrics" | sed -n 's/^sim_events_total //p'); \
	second=$$(/tmp/lbsim-service-smoke -app wave2d -cores 8 -strategy refine -bg -scale 0.05 \
		-submit "http://$$addr") || { echo "service-smoke: second submit failed"; fail=1; }; \
	echo "$$second" | grep -q "(cache hit, spec" || { echo "service-smoke: second submit missed the cache"; fail=1; }; \
	events2=$$(curl -sf "http://$$addr/metrics" | sed -n 's/^sim_events_total //p'); \
	[ -n "$$events1" ] && [ "$$events1" = "$$events2" ] || { \
		echo "service-smoke: cache hit simulated: sim_events_total $$events1 -> $$events2"; fail=1; }; \
	arts1=$$(echo "$$first" | grep '^artifact:'); arts2=$$(echo "$$second" | grep '^artifact:'); \
	[ -n "$$arts1" ] && [ "$$arts1" = "$$arts2" ] || { echo "service-smoke: artifact listings differ between submissions"; fail=1; }; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -rf "$$log" "$$storedir"; \
	[ $$fail -eq 0 ] || exit 1; \
	echo "service-smoke: cached resubmission OK on $$addr ($$(echo "$$arts1" | wc -l) artifacts, $$events1 events)"

# Observability smoke: boot lbsim as an evaluation server with JSON
# logging on, submit a Spec, and assert the tracing contract end to end:
# server stderr carries JSON log lines tagged with the job's trace ID,
# the job exports a well-formed Chrome trace_spans.json artifact with
# the expected spans, /healthz and /readyz answer 200, and resubmitting
# the same Spec logs a cache hit instead of recomputing.
obs-smoke:
	@$(GO) build -o /tmp/lbsim-obs-smoke ./cmd/lbsim; \
	log=$$(mktemp); storedir=$$(mktemp -d); \
	/tmp/lbsim-obs-smoke -app jacobi2d -cores 4 -scale 0.05 \
		-serve 127.0.0.1:0 -store "$$storedir" -log info -serve-wait 60s >/dev/null 2>"$$log" & \
	pid=$$!; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's|^telemetry: serving on http://\([^/]*\)/$$|\1|p' "$$log"); \
		[ -n "$$addr" ] && break; \
		kill -0 $$pid 2>/dev/null || { echo "obs-smoke: server exited early"; cat "$$log"; rm -rf "$$log" "$$storedir"; exit 1; }; \
		sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "obs-smoke: no serving address in stderr"; cat "$$log"; kill $$pid; rm -rf "$$log" "$$storedir"; exit 1; }; \
	fail=0; \
	hcode=$$(curl -s -o /dev/null -w '%{http_code}' "http://$$addr/healthz"); \
	[ "$$hcode" = "200" ] || { echo "obs-smoke: /healthz answered $$hcode, want 200"; fail=1; }; \
	rcode=$$(curl -s -o /dev/null -w '%{http_code}' "http://$$addr/readyz"); \
	[ "$$rcode" = "200" ] || { echo "obs-smoke: /readyz answered $$rcode, want 200"; fail=1; }; \
	first=$$(/tmp/lbsim-obs-smoke -app wave2d -cores 8 -strategy refine -bg -scale 0.05 \
		-submit "http://$$addr") || { echo "obs-smoke: submit failed"; fail=1; }; \
	echo "$$first" | grep -q "(computed, spec" || { echo "obs-smoke: first submit was not computed"; fail=1; }; \
	grep '"trace_id":"job-' "$$log" | head -1 | jq -e '.msg and .trace_id' >/dev/null 2>&1 || { \
		echo "obs-smoke: no JSON log line carrying a job trace ID"; fail=1; }; \
	spanurl=$$(echo "$$first" | sed -n 's/^artifact: *trace_spans\.json *\([^ ]*\).*/\1/p'); \
	[ -n "$$spanurl" ] || { echo "obs-smoke: no trace_spans.json artifact in submit output"; fail=1; }; \
	curl -sf "$$spanurl" | jq -e 'type == "array" and length > 0 and ([.[] | select(.ph == "X" and .name == "execute")] | length) >= 1 and ([.[] | select(.ph == "X" and .name == "cache-lookup")] | length) >= 1 and all(.[]; has("ph"))' >/dev/null || { \
		echo "obs-smoke: trace_spans.json is not a well-formed Chrome span array"; fail=1; }; \
	second=$$(/tmp/lbsim-obs-smoke -app wave2d -cores 8 -strategy refine -bg -scale 0.05 \
		-submit "http://$$addr") || { echo "obs-smoke: second submit failed"; fail=1; }; \
	echo "$$second" | grep -q "(cache hit, spec" || { echo "obs-smoke: second submit missed the cache"; fail=1; }; \
	grep -q '"msg":"cache hit"' "$$log" || { echo "obs-smoke: cache hit was not logged"; fail=1; }; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -rf "$$log" "$$storedir"; \
	[ $$fail -eq 0 ] || exit 1; \
	echo "obs-smoke: logs, spans and health endpoints OK on $$addr"

# Regenerate the committed results/ tree (byte-identical at any -parallel).
# Figures 5 (elasticity) and 6 (network interference) are the cloud
# extensions and stay out of "-fig all" so the paper figures regenerate
# unchanged; each gets its own invocation.
figures:
	$(GO) run ./cmd/figures -fig all -cores 4,8,16,32 -seeds 3 -scale 1.0 \
		-csv results -plots results -parallel 0 > results/figures_full.txt
	$(GO) run ./cmd/figures -fig 5 -seeds 3 -scale 1.0 \
		-csv results -parallel 0 > results/fig5.txt
	$(GO) run ./cmd/figures -fig 6 -seeds 3 -scale 1.0 \
		-csv results -parallel 0 > results/fig6.txt
	$(GO) run ./cmd/figures -fig 7 -scale 1.0 \
		-csv results -parallel 0 > results/fig7.txt

# Regenerate the full results/ tree into a temp dir and diff it against
# the committed files, twice: once on the classic single engine and once
# with the sharded scheduler (-shards 8, one shard per testbed node).
# The committed figures are a byte-exact oracle for the simulation's
# determinism; any divergence — including between shard counts — is a
# regression, not noise. The "wrote <path>" status lines in the .txt
# logs embed the output directory, so the temp path is rewritten to
# "results" before diffing.
verify-results:
	@for shards in 1 8; do \
		tmp=$$(mktemp -d) || exit 1; \
		$(GO) run ./cmd/figures -fig all -cores 4,8,16,32 -seeds 3 -scale 1.0 \
			-shards $$shards -csv "$$tmp" -plots "$$tmp" -parallel 0 > "$$tmp/figures_full.txt" && \
		$(GO) run ./cmd/figures -fig 5 -seeds 3 -scale 1.0 \
			-shards $$shards -csv "$$tmp" -parallel 0 > "$$tmp/fig5.txt" && \
		$(GO) run ./cmd/figures -fig 6 -seeds 3 -scale 1.0 \
			-shards $$shards -csv "$$tmp" -parallel 0 > "$$tmp/fig6.txt" && \
		$(GO) run ./cmd/figures -fig 7 -scale 1.0 \
			-shards $$shards -csv "$$tmp" -parallel 0 > "$$tmp/fig7.txt" && \
		sed -i "s|$$tmp|results|g" "$$tmp/figures_full.txt" "$$tmp/fig5.txt" "$$tmp/fig6.txt" "$$tmp/fig7.txt" && \
		diff -r --exclude=README.md results "$$tmp" && \
		echo "results/ reproduced byte-identical at -shards $$shards" || \
		{ rm -rf "$$tmp"; exit 1; }; \
		rm -rf "$$tmp"; \
	done
