// AMPI: an MPI-style program benefiting from migratable ranks.
//
// Sixty-four ranks run a synthetic SPMD kernel (compute, exchange halos with
// ring neighbors, AllReduce a residual) over four cores, while an
// interfering job burns one core. The ranks call MigrateSync every few
// iterations; with RefineLB the runtime migrates user-level threads away
// from the interfered core — the paper's story for existing MPI codes.
//
//	go run ./examples/ampi
package main

import (
	"fmt"

	"cloudlb/internal/ampi"
	"cloudlb/internal/charm"
	"cloudlb/internal/core"
	"cloudlb/internal/interfere"
	"cloudlb/internal/machine"
	"cloudlb/internal/sim"
	"cloudlb/internal/xnet"
)

func main() {
	scenario := func(strategy core.Strategy, withHog bool) float64 {
		eng := sim.NewEngine()
		mach := machine.New(eng, machine.Config{Nodes: 1, CoresPerNode: 4, CoreSpeed: 1})
		net := xnet.New(mach, xnet.DefaultConfig())
		rts := charm.NewRTS(charm.Config{
			Machine: mach, Net: net, Cores: []int{0, 1, 2, 3},
			Strategy: strategy, Name: "ampi",
		})
		if withHog {
			interfere.StartHog(mach, interfere.HogConfig{Core: 3, Start: 0.2})
		}

		const ranks = 64
		ampi.New(rts, "ring", ranks, func(r *ampi.Rank) {
			left := (r.Rank() + ranks - 1) % ranks
			right := (r.Rank() + 1) % ranks
			val := float64(r.Rank())
			for iter := 0; iter < 50; iter++ {
				r.Charge(0.002) // local kernel
				r.Send(left, val, 4096)
				r.Send(right, val, 4096)
				a := r.Recv(left).(float64)
				b := r.Recv(right).(float64)
				val = (a + b + val) / 3
				if iter%10 == 9 {
					r.AllReduce(val, charm.ReduceMax)
					r.MigrateSync()
				}
			}
		})
		rts.Start()
		for !rts.Finished() && eng.Now() < 200 {
			if err := eng.RunUntil(eng.Now() + 1); err != nil {
				panic(err)
			}
		}
		return float64(rts.FinishTime())
	}

	base := scenario(nil, false)
	noLB := scenario(nil, true)
	lb := scenario(&core.RefineLB{EpsilonFrac: 0.05}, true)

	fmt.Printf("AMPI ring, 64 migratable ranks on 4 cores, hog on core 3:\n")
	fmt.Printf("  interference-free: %6.2f s\n", base)
	fmt.Printf("  no LB:             %6.2f s  (+%.0f%%)\n", noLB, (noLB-base)/base*100)
	fmt.Printf("  RefineLB:          %6.2f s  (+%.0f%%)\n", lb, (lb-base)/base*100)
}
