// Quickstart: the paper's headline result in ~60 lines.
//
// A Jacobi2D solver over-decomposed into 128 chares runs on the 4 cores
// of one simulated node while a 2-core Wave2D job interferes with two of
// them. Without load balancing the tightly coupled solver pays roughly
// the full slowdown of its most-interfered core; with the paper's
// interference-aware RefineLB, the runtime migrates objects away from
// the interfered cores and recovers most of the loss.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"cloudlb/internal/apps"
	"cloudlb/internal/charm"
	"cloudlb/internal/core"
	"cloudlb/internal/interfere"
	"cloudlb/internal/machine"
	"cloudlb/internal/sim"
	"cloudlb/internal/xnet"
)

func run(strategy core.Strategy, withInterference bool) (wall float64, migrations int) {
	eng := sim.NewEngine()
	mach := machine.New(eng, machine.Config{Nodes: 1, CoresPerNode: 4, CoreSpeed: 1})
	net := xnet.New(mach, xnet.DefaultConfig())

	rts := charm.NewRTS(charm.Config{
		Machine: mach, Net: net, Cores: []int{0, 1, 2, 3},
		Strategy: strategy, Name: "jacobi",
	})
	apps.NewStencilApp(rts, apps.StencilConfig{
		Array: "jacobi", GridW: 256, GridH: 128, CharesX: 16, CharesY: 8,
		Iters: 120, SyncEvery: 10, CostPerCell: 3e-6,
		NewKernel: apps.NewJacobiKernel(256, 128),
	})

	if withInterference {
		bg := interfere.NewWave2DJob(mach, net, interfere.Wave2DJobConfig{
			Cores: []int{2, 3}, Iters: 800,
		})
		bg.Start()
	}

	rts.Start()
	for !rts.Finished() && eng.Now() < 1000 {
		if err := eng.RunUntil(eng.Now() + 1); err != nil {
			panic(err)
		}
	}
	return float64(rts.FinishTime()), rts.Migrations()
}

func main() {
	base, _ := run(nil, false)
	noLB, _ := run(nil, true)
	lb, migrations := run(&core.RefineLB{EpsilonFrac: 0.02}, true)

	penalty := func(w float64) float64 { return (w - base) / base * 100 }
	fmt.Printf("interference-free baseline: %6.2f s\n", base)
	fmt.Printf("interfered, no LB:          %6.2f s  (timing penalty %5.1f%%)\n", noLB, penalty(noLB))
	fmt.Printf("interfered, RefineLB:       %6.2f s  (timing penalty %5.1f%%, %d objects migrated)\n",
		lb, penalty(lb), migrations)
	fmt.Printf("penalty reduction:          %5.1f%%\n", (1-penalty(lb)/penalty(noLB))*100)
}
