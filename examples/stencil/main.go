// Stencil: dynamic interference and adaptation, rendered as timelines.
//
// Wave2D runs on 4 cores under RefineLB. A CPU-bound interfering job
// appears on core 1, disappears, then another appears on core 3 — the
// scenario of the paper's Figure 3. The example prints ASCII timelines
// of the five phases, showing the balancer shedding the interfered core
// and repopulating it once the interference ends.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"os"

	"cloudlb/internal/apps"
	"cloudlb/internal/charm"
	"cloudlb/internal/core"
	"cloudlb/internal/interfere"
	"cloudlb/internal/machine"
	"cloudlb/internal/sim"
	"cloudlb/internal/trace"
	"cloudlb/internal/xnet"
)

func main() {
	eng := sim.NewEngine()
	mach := machine.New(eng, machine.Config{Nodes: 1, CoresPerNode: 4, CoreSpeed: 1})
	net := xnet.New(mach, xnet.DefaultConfig())
	rec := trace.NewRecorder()

	rts := charm.NewRTS(charm.Config{
		Machine: mach, Net: net, Cores: []int{0, 1, 2, 3},
		Strategy: &core.RefineLB{EpsilonFrac: 0.02},
		Trace:    rec, Name: "wave",
	})
	apps.NewStencilApp(rts, apps.StencilConfig{
		Array: "wave", GridW: 256, GridH: 128, CharesX: 16, CharesY: 8,
		Iters: 200, SyncEvery: 5, CostPerCell: 3e-6,
		NewKernel: apps.NewWaveKernel(256, 128, 0.4),
	})

	// Interference timeline: core 1 from 1.0s to 3.0s, core 3 from 4.5s
	// to 6.5s.
	interfere.StartHog(mach, interfere.HogConfig{Core: 1, Start: 1.0, Stop: 3.0, Trace: rec, Name: "vm-a"})
	interfere.StartHog(mach, interfere.HogConfig{Core: 3, Start: 4.5, Stop: 6.5, Trace: rec, Name: "vm-b"})

	rts.Start()
	for !rts.Finished() && eng.Now() < 100 {
		if err := eng.RunUntil(eng.Now() + 1); err != nil {
			panic(err)
		}
	}
	finish := rts.FinishTime()
	fmt.Printf("Wave2D finished at %.2fs with %d migrations over %d LB steps\n\n",
		float64(finish), rts.Migrations(), rts.LBSteps())

	phases := []struct {
		label    string
		from, to sim.Time
	}{
		{"quiet start", 0.2, 1.0},
		{"vm-a lands on core 1", 1.0, 1.8},
		{"rebalanced around vm-a", 2.2, 3.0},
		{"vm-a gone, work returns to core 1", 3.2, 4.4},
		{"vm-b lands on core 3, rebalanced", 5.5, 6.5},
	}
	for _, p := range phases {
		if p.to > finish {
			break
		}
		fmt.Printf("--- %s ---\n", p.label)
		rec.RenderASCII(os.Stdout, []int{0, 1, 2, 3}, p.from, p.to, 96)
		fmt.Println()
	}
}
