// Cloudburst: the paper's future-work setting, end to end.
//
// A Jacobi2D solver runs on 8 cores of a simulated cloud host while
// tenant VMs arrive and depart as a Poisson process across all of its
// cores ("multiple VMs share CPU resources", paper §VI). The example
// compares noLB against RefineLB and prints the Projections-style time
// profile, where the balancer's reaction to each tenant is visible.
//
//	go run ./examples/cloudburst
package main

import (
	"fmt"
	"os"

	"cloudlb/internal/apps"
	"cloudlb/internal/charm"
	"cloudlb/internal/core"
	"cloudlb/internal/interfere"
	"cloudlb/internal/machine"
	"cloudlb/internal/projections"
	"cloudlb/internal/sim"
	"cloudlb/internal/trace"
	"cloudlb/internal/xnet"
)

func run(strategy core.Strategy, rec *trace.Recorder) (wall float64, migrations, tenants int) {
	eng := sim.NewEngine()
	mach := machine.New(eng, machine.Config{Nodes: 2, CoresPerNode: 4, CoreSpeed: 1})
	net := xnet.New(mach, xnet.DefaultConfig())
	cores := []int{0, 1, 2, 3, 4, 5, 6, 7}

	rts := charm.NewRTS(charm.Config{
		Machine: mach, Net: net, Cores: cores,
		Strategy: strategy, Trace: rec, Name: "jacobi",
	})
	apps.NewStencilApp(rts, apps.StencilConfig{
		Array: "jacobi", GridW: 256, GridH: 256, CharesX: 16, CharesY: 16,
		Iters: 250, SyncEvery: 5, CostPerCell: 2e-6,
		NewKernel: apps.NewJacobiKernel(256, 256),
	})
	churn := interfere.StartChurn(mach, interfere.ChurnConfig{
		Cores:             cores,
		ArrivalsPerSecond: 1.5,
		MeanDuration:      1.2,
		MaxConcurrent:     3,
		Seed:              11,
		Trace:             rec,
	})

	rts.Start()
	for !rts.Finished() && eng.Now() < 1000 {
		if err := eng.RunUntil(eng.Now() + 1); err != nil {
			panic(err)
		}
	}
	return float64(rts.FinishTime()), rts.Migrations(), churn.Arrivals()
}

func main() {
	base, _, _ := runQuiet()
	noLB, _, tenantsNo := run(nil, nil)
	rec := trace.NewRecorder()
	lb, migrations, tenantsLB := run(&core.RefineLB{EpsilonFrac: 0.02}, rec)

	fmt.Println("Jacobi2D on an 8-core cloud host with tenant VM churn:")
	fmt.Printf("  quiet host:          %6.2f s\n", base)
	fmt.Printf("  churn, no LB:        %6.2f s  (+%.0f%%, %d tenants)\n", noLB, (noLB-base)/base*100, tenantsNo)
	fmt.Printf("  churn, RefineLB:     %6.2f s  (+%.0f%%, %d tenants, %d migrations)\n\n",
		lb, (lb-base)/base*100, tenantsLB, migrations)

	cores := []int{0, 1, 2, 3, 4, 5, 6, 7}
	projections.Profile(rec, cores, 0, sim.Time(lb), 96).Write(os.Stdout)
	fmt.Printf("imb  |%s|  (per-core task imbalance; spikes mark tenant arrivals)\n",
		projections.Sparkline(scaleImb(projections.Imbalance(rec, cores, 0, sim.Time(lb), 96))))
}

func runQuiet() (float64, int, int) {
	eng := sim.NewEngine()
	mach := machine.New(eng, machine.Config{Nodes: 2, CoresPerNode: 4, CoreSpeed: 1})
	net := xnet.New(mach, xnet.DefaultConfig())
	rts := charm.NewRTS(charm.Config{
		Machine: mach, Net: net, Cores: []int{0, 1, 2, 3, 4, 5, 6, 7}, Name: "jacobi",
	})
	apps.NewStencilApp(rts, apps.StencilConfig{
		Array: "jacobi", GridW: 256, GridH: 256, CharesX: 16, CharesY: 16,
		Iters: 250, SyncEvery: 5, CostPerCell: 2e-6,
		NewKernel: apps.NewJacobiKernel(256, 256),
	})
	rts.Start()
	for !rts.Finished() && eng.Now() < 1000 {
		if err := eng.RunUntil(eng.Now() + 1); err != nil {
			panic(err)
		}
	}
	return float64(rts.FinishTime()), 0, 0
}

func scaleImb(series []float64) []float64 {
	out := make([]float64, len(series))
	for i, v := range series {
		if v > 1 {
			out[i] = (v - 1) / 7 // 8 cores: worst case 8/1
		}
	}
	return out
}
