// Moldyn: strategy shoot-out on an irregular application.
//
// Mol3D — cell-list molecular dynamics with a clustered particle
// distribution — has both application-internal imbalance (dense cells
// cost more) and external interference (a weight-4 background job on two
// cores, modeling the OS preference the paper observed). The example
// runs every load balancing strategy in the repository on the same
// workload and prints wall time, migration count and timing penalty.
//
//	go run ./examples/moldyn
package main

import (
	"fmt"
	"os"

	"cloudlb/internal/apps"
	"cloudlb/internal/charm"
	"cloudlb/internal/core"
	"cloudlb/internal/interfere"
	"cloudlb/internal/lb"
	"cloudlb/internal/machine"
	"cloudlb/internal/sim"
	"cloudlb/internal/stats"
	"cloudlb/internal/xnet"
)

func run(strategy core.Strategy, withBG bool) (wall float64, migrations int) {
	eng := sim.NewEngine()
	mach := machine.New(eng, machine.Config{Nodes: 2, CoresPerNode: 4, CoreSpeed: 1})
	net := xnet.New(mach, xnet.DefaultConfig())

	cores := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rts := charm.NewRTS(charm.Config{
		Machine: mach, Net: net, Cores: cores,
		Strategy:  strategy,
		Placement: charm.PlaceBlock,
		Name:      "mol3d",
	})
	apps.NewMol3DApp(rts, apps.Mol3DConfig{
		CellsX: 16, CellsY: 16, CellsZ: 1,
		CellSize: 1.0, Cutoff: 0.8,
		Particles: 2048, ClusterFrac: 0.3, ClusterSigmaFrac: 0.25,
		Seed: 7, Dt: 5e-4, Epsilon: 0.2,
		Iters: 60, SyncEvery: 10,
		CostPerPair: 3e-6, CostPerParticle: 1e-6,
	})

	if withBG {
		bg := interfere.NewWave2DJob(mach, net, interfere.Wave2DJobConfig{
			Cores: []int{6, 7}, Iters: 2000, Weight: 4,
		})
		bg.Start()
	}
	rts.Start()
	for !rts.Finished() && eng.Now() < 1000 {
		if err := eng.RunUntil(eng.Now() + 1); err != nil {
			panic(err)
		}
	}
	return float64(rts.FinishTime()), rts.Migrations()
}

func main() {
	strategies := []struct {
		name string
		s    core.Strategy
	}{
		{"noLB", nil},
		{"RefineLB (paper)", &core.RefineLB{EpsilonFrac: 0.02}},
		{"RefineInternalLB (ablation)", &lb.RefineInternalLB{Inner: core.RefineLB{EpsilonFrac: 0.02}}},
		{"RefineSwapLB", &lb.RefineSwapLB{Inner: core.RefineLB{EpsilonFrac: 0.02}}},
		{"GreedyLB", lb.GreedyLB{}},
		{"ThresholdLB", &lb.ThresholdLB{ThresholdFrac: 0.2}},
		{"MigrationCostAwareLB", &lb.MigrationCostAwareLB{
			Inner: &core.RefineLB{EpsilonFrac: 0.02}, BytesPerSecond: 1e8,
		}},
	}

	base, _ := run(&core.RefineLB{EpsilonFrac: 0.02}, false)
	fmt.Printf("interference-free RefineLB baseline: %.2f s\n\n", base)

	tab := stats.NewTable("strategy", "wall s", "penalty %", "migrations")
	for _, st := range strategies {
		wall, migs := run(st.s, true)
		tab.AddRow(st.name, wall, stats.TimingPenaltyPct(wall, base), migs)
	}
	tab.Write(os.Stdout)
	fmt.Println("\nRefineLB should beat noLB and the background-blind ablation while")
	fmt.Println("migrating far fewer objects than GreedyLB.")
}
