module cloudlb

go 1.22
