// Package cloudlb reproduces "Cloud Friendly Load Balancing for HPC
// Applications: Preliminary Work" (Sarood, Gupta, Kalé; ICPP 2012
// workshops): an interference-aware refinement load balancer for
// migratable-object runtimes, evaluated on a simulated multi-tenant
// cluster.
//
// The package tree:
//
//	internal/core        the paper's Algorithm 1 (RefineLB) and the
//	                     strategy interface
//	internal/lb          baseline and ablation strategies
//	internal/charm       Charm++-style migratable-object runtime
//	internal/machine     simulated nodes/cores with a proportional-share
//	                     OS scheduler and /proc/stat accounting
//	internal/xnet        interconnect model
//	internal/power       node power model and per-second energy meter
//	internal/apps        Jacobi2D, Wave2D, Mol3D
//	internal/ampi        Adaptive-MPI-style ranks over the runtime
//	internal/interfere   interfering jobs (hogs, 2-core Wave2D, churn)
//	internal/trace       timeline recording (ASCII/SVG/Chrome trace)
//	internal/projections Projections-style analysis (profiles, imbalance)
//	internal/plot        SVG bar charts for regenerated figures
//	internal/experiment  the paper's full evaluation harness
//	internal/runner      bounded worker pool running scenario batches in
//	                     parallel with deterministic result ordering
//	internal/stats       penalties, energy overheads, tables
//
// The benchmarks in bench_test.go regenerate the data behind every
// figure of the paper; see EXPERIMENTS.md for measured-vs-paper results.
package cloudlb
