// Command lbsim runs load balancing scenarios on the simulated testbed
// and prints their measurements: wall time, background-job wall time,
// power, energy, migrations and LB steps.
//
// A single run prints the full measurement block; -runs N fans N seeds
// out over the scenario worker pool and prints one row per seed plus the
// mean, which is how the paper's 3-run averages are produced.
//
// Usage:
//
//	lbsim -app wave2d -cores 8 -strategy refine -bg -seed 1
//	lbsim -app mol3d -cores 16 -strategy greedy -bg -bgweight 4
//	lbsim -app jacobi2d -cores 4 -strategy none
//	lbsim -app wave2d -cores 8 -strategy refine -bg -runs 8 -parallel 4
//	lbsim -app wave2d -cores 8 -strategy refine -preempt 4:1.4:0.25:2.3:8
//	lbsim -app wave2d -cores 8 -strategy refine -bg -metrics -
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"cloudlb/internal/elastic"
	"cloudlb/internal/experiment"
	"cloudlb/internal/obs"
	"cloudlb/internal/profiling"
	"cloudlb/internal/runner"
	"cloudlb/internal/service"
	"cloudlb/internal/sim"
	"cloudlb/internal/stats"
	"cloudlb/internal/trace"
	"cloudlb/internal/xnet"
)

// parsePreempt parses the -preempt flag: comma-separated
// pe:at:warning:restore:core revocations (times in simulated seconds).
func parsePreempt(s string) (elastic.Schedule, error) {
	if s == "" {
		return nil, nil
	}
	var out elastic.Schedule
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 5 {
			return nil, fmt.Errorf("bad -preempt entry %q: want pe:at:warning:restore:core", part)
		}
		pe, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad -preempt PE %q", fields[0])
		}
		var times [3]float64
		for i, name := range []string{"at", "warning", "restore"} {
			v, err := strconv.ParseFloat(fields[1+i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad -preempt %s %q", name, fields[1+i])
			}
			times[i] = v
		}
		core, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("bad -preempt core %q", fields[4])
		}
		out = append(out, elastic.Revocation{
			PE: pe, At: sim.Time(times[0]), Warning: sim.Duration(times[1]),
			Restore: sim.Time(times[2]), ReplacementCore: core,
		})
	}
	return out, nil
}

func main() {
	app := flag.String("app", "wave2d", "application: jacobi2d, wave2d, mol3d")
	cores := flag.Int("cores", 8, "cores to run on (multiple of 4; above 32 the cluster grows one node per 4 cores)")
	strategy := flag.String("strategy", "refine", "load balancer: none, refine, refineinternal, refineswap, greedy, threshold, costaware, diffusion")
	bg := flag.Bool("bg", false, "run the 2-core Wave2D background job on the last two cores")
	churn := flag.Bool("churn", false, "multi-tenant churn interference across all cores (instead of -bg)")
	bgWeight := flag.Float64("bgweight", 1, "OS scheduling weight of the background job")
	bgIters := flag.Int("bgiters", 0, "background job iterations (0 = default)")
	seed := flag.Int64("seed", 1, "random seed (cost jitter, particle layout, BG start offset)")
	runs := flag.Int("runs", 1, "number of seeds to run, starting at -seed")
	parallel := flag.Int("parallel", 0, "concurrent scenario workers (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 1.0, "iteration-count scale factor")
	chromePath := flag.String("chrome", "", "write a Chrome trace-event JSON of the run to this path (single run only)")
	spanPath := flag.String("trace-spans", "", "write a Chrome trace-event JSON of the run's host-time job spans (queue wait, per-scenario execution, LB steps, barrier stalls) to this path; merges the -chrome virtual-time trace when both are set")
	hier := flag.Bool("hier", false, "use the hierarchical (tree) LB gather instead of the flat gather")
	diffRounds := flag.Int("diffrounds", 0, "DiffusionLB: max neighbor-exchange rounds per LB step (0 = default 16)")
	diffTol := flag.Float64("difftol", 0, "DiffusionLB: convergence band as a fraction of the average load (0 = default 0.05)")
	shards := flag.String("shards", "1", "event-scheduler shards per run: 1 = classic single engine, N = parallel node shards, auto = one per node up to GOMAXPROCS (results are identical at any value)")
	preempt := flag.String("preempt", "", "core revocation schedule, comma-separated pe:at:warning:restore:core entries (restore 0 = never, core -1 = original core)")
	dropPct := flag.Float64("droppct", 0, "percentage of inter-node transmissions lost and retransmitted (0 = reliable network)")
	straggle := flag.String("straggle", "", "straggler nodes and slowdown factor, NODES:FACTOR (e.g. \"1,3:4\"): their links get latency x factor, bandwidth / factor")
	netSeed := flag.Int64("netseed", 0, "seed of the packet-drop lottery (deterministic per seed at any shard count)")
	submit := flag.String("submit", "", `submit the scenario to a running service instead of simulating in-process (server base URL, e.g. "http://127.0.0.1:8080"; start one with -serve and -store)`)
	prof := profiling.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}

	appKind, err := experiment.ParseAppKind(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(2)
	}
	stratKind, err := experiment.ParseStrategyKind(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(2)
	}
	if *runs < 1 {
		fmt.Fprintln(os.Stderr, "lbsim: -runs must be at least 1")
		os.Exit(2)
	}
	if *chromePath != "" && *runs != 1 {
		fmt.Fprintln(os.Stderr, "lbsim: -chrome requires a single run")
		os.Exit(2)
	}

	nShards, err := experiment.ParseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(2)
	}

	faults, err := parsePreempt(*preempt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(2)
	}

	stragNodes, stragFactor, err := experiment.ParseStraggle(*straggle)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(2)
	}
	netCfg := xnet.Config{DropPct: *dropPct, Seed: *netSeed}
	if len(stragNodes) > 0 {
		netCfg.StragglerNodes = stragNodes
		netCfg.StragglerFactor = stragFactor
	}

	seeds := make([]int64, *runs)
	for i := range seeds {
		seeds[i] = *seed + int64(i)
	}
	spec := experiment.Spec{
		App:          appKind,
		Cores:        []int{*cores},
		Strategies:   []experiment.StrategyKind{stratKind},
		Seeds:        seeds,
		BGWeight:     *bgWeight,
		BGIters:      *bgIters,
		Scale:        *scale,
		DiffRounds:   *diffRounds,
		DiffTol:      *diffTol,
		Hierarchical: *hier,
		Faults:       faults,
		Net:          netCfg,
		Shards:       nShards,
	}
	switch {
	case *bg && *churn:
		fmt.Fprintln(os.Stderr, "lbsim: -bg and -churn are mutually exclusive")
		os.Exit(2)
	case *bg:
		spec.BG = experiment.BGWave2D
	case *churn:
		spec.BG = experiment.BGCloudChurn
	}
	// One validation path for flags and HTTP submissions alike: the same
	// Spec.Validate that gates POST /api/v1/jobs gates the command line.
	if err := spec.Validate(); err != nil {
		var verr *experiment.ValidationError
		if errors.As(err, &verr) {
			for _, fe := range verr.Fields {
				fmt.Fprintf(os.Stderr, "lbsim: %s: %s\n", fe.Field, fe.Msg)
			}
		} else {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
		}
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *submit != "" {
		if err := submitRemote(ctx, *submit, spec, *chromePath); err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		return
	}

	var rec *trace.Recorder
	batch := spec.Scenarios()
	for i := range batch {
		batch[i].Metrics = prof.Registry()
		batch[i].LBTimeline = prof.Timeline()
	}
	if *chromePath != "" {
		rec = trace.NewRecorder()
		batch[0].Trace = rec
	}

	// -trace-spans (or -log) attaches a job trace to the in-process run:
	// the pool, scheduler, runtime and network record their host-time spans
	// on it exactly as they would for a service job.
	log, err := prof.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(2)
	}
	var tr *obs.Trace
	if *spanPath != "" || log != nil {
		tr = obs.NewTrace("lbsim", log)
		ctx = obs.NewContext(ctx, tr)
	}
	log.Info("run starting", "trace_id", tr.ID(), "app", appKind.String(),
		"cores", *cores, "strategy", stratKind.String(), "runs", *runs, "shards", nShards)

	pool := &runner.Pool{Workers: *parallel, Metrics: prof.Registry(), Progress: prof.Tracker()}
	results, batchStats, err := pool.RunBatch(ctx, batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}
	log.Info("run complete", "trace_id", tr.ID(),
		"events", batchStats.Events, "wall_s", batchStats.Wall.Seconds(),
		"spans", len(tr.Spans()))

	if *runs == 1 {
		res := results[0]
		fmt.Printf("app:            %v on %d cores, strategy %v, seed %d\n", appKind, *cores, stratKind, *seed)
		fmt.Printf("wall time:      %.3f s\n", res.AppWall)
		if !math.IsNaN(res.BGWall) {
			fmt.Printf("bg wall time:   %.3f s (weight %.1f)\n", res.BGWall, *bgWeight)
		}
		fmt.Printf("avg power:      %.1f W over the application's nodes\n", res.AvgPowerW)
		fmt.Printf("energy:         %.1f J\n", res.EnergyJ)
		fmt.Printf("LB steps:       %d\n", res.LBSteps)
		fmt.Printf("migrations:     %d\n", res.Migrations)
		if !netCfg.IsZero() {
			fmt.Printf("net drops:      %d (%d retransmits, drop %.3g%%, seed %d)\n",
				res.NetDrops, res.NetRetransmits, *dropPct, *netSeed)
		}
		if len(faults) > 0 {
			fmt.Printf("evacuations:    %d (schedule of %d revocations)\n", res.Evacuations, len(faults))
		}
	} else {
		fmt.Printf("app: %v on %d cores, strategy %v, seeds %d..%d\n",
			appKind, *cores, stratKind, *seed, *seed+int64(*runs)-1)
		tab := stats.NewTable("seed", "wall s", "bg wall s", "power W", "energy J", "migrations")
		var walls []float64
		for i, r := range results {
			tab.AddRow(*seed+int64(i), r.AppWall, r.BGWall, r.AvgPowerW, r.EnergyJ, r.Migrations)
			walls = append(walls, r.AppWall)
		}
		tab.Write(os.Stdout)
		fmt.Printf("mean wall time: %.3f s over %d seeds\n", stats.Mean(walls), *runs)
	}
	fmt.Fprintf(os.Stderr, "lbsim: %d simulated events in %.3fs wall-clock (%.3gM events/s, %d workers)\n",
		batchStats.Events, batchStats.Wall.Seconds(), batchStats.EventsPerSec()/1e6, pool.WorkerCount())

	if *chromePath != "" {
		f, err := os.Create(*chromePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("trace:          %s\n", *chromePath)
	}

	if *spanPath != "" {
		var simTrace []byte
		if rec != nil {
			simTrace, err = rec.ChromeTraceJSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "lbsim:", err)
				os.Exit(1)
			}
		}
		spans, err := tr.ChromeJSON(simTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*spanPath, spans, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace spans:    %s (%d spans)\n", *spanPath, len(tr.Spans()))
	}

	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}
}

// submitRemote sends the assembled Spec to a scenario service and prints
// the resulting artifact table. A repeat submission of the same Spec is
// served from the server's content-addressed cache without simulating.
func submitRemote(ctx context.Context, base string, spec experiment.Spec, chromePath string) error {
	client := &service.Client{BaseURL: base}
	view, err := client.Run(ctx, service.Request{Method: "scenarios", Spec: spec})
	if err != nil {
		return err
	}
	if view.State == service.StateFailed {
		return fmt.Errorf("remote job %s failed: %s", view.ID, view.Error)
	}
	source := "computed"
	if view.Cached {
		source = "cache hit"
	}
	fmt.Printf("job:            %s on %s (%s, spec %s)\n", view.ID, base, source, view.SpecHash[:12])
	if art, ok := view.Artifacts["table.csv"]; ok {
		b, err := client.Artifact(ctx, art)
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
	}
	names := make([]string, 0, len(view.Artifacts))
	for name := range view.Artifacts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		art := view.Artifacts[name]
		fmt.Printf("artifact:       %-12s %s%s (%d bytes)\n", name, strings.TrimRight(base, "/"), art.URL, art.Size)
	}
	if chromePath != "" {
		art, ok := view.Artifacts["trace.json"]
		if !ok {
			return fmt.Errorf("remote job recorded no trace (traces need a single-scenario batch)")
		}
		b, err := client.Artifact(ctx, art)
		if err != nil {
			return err
		}
		if err := os.WriteFile(chromePath, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("trace:          %s\n", chromePath)
	}
	return nil
}
