// Command lbsim runs a single load balancing scenario on the simulated
// testbed and prints its measurements: wall time, background-job wall
// time, power, energy, migrations and LB steps.
//
// Usage:
//
//	lbsim -app wave2d -cores 8 -strategy refine -bg -seed 1
//	lbsim -app mol3d -cores 16 -strategy greedy -bg -bgweight 4
//	lbsim -app jacobi2d -cores 4 -strategy none
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"cloudlb/internal/experiment"
	"cloudlb/internal/trace"
)

func main() {
	app := flag.String("app", "wave2d", "application: jacobi2d, wave2d, mol3d")
	cores := flag.Int("cores", 8, "cores to run on (multiple of 4, up to 32)")
	strategy := flag.String("strategy", "refine", "load balancer: none, refine, refineinternal, refineswap, greedy, threshold, costaware")
	bg := flag.Bool("bg", false, "run the 2-core Wave2D background job on the last two cores")
	churn := flag.Bool("churn", false, "multi-tenant churn interference across all cores (instead of -bg)")
	bgWeight := flag.Float64("bgweight", 1, "OS scheduling weight of the background job")
	bgIters := flag.Int("bgiters", 0, "background job iterations (0 = default)")
	seed := flag.Int64("seed", 1, "random seed (cost jitter, particle layout, BG start offset)")
	scale := flag.Float64("scale", 1.0, "iteration-count scale factor")
	chromePath := flag.String("chrome", "", "write a Chrome trace-event JSON of the run to this path")
	hier := flag.Bool("hier", false, "use the hierarchical (tree) LB gather instead of the flat gather")
	flag.Parse()

	appKind, ok := map[string]experiment.AppKind{
		"jacobi2d": experiment.Jacobi2D,
		"wave2d":   experiment.Wave2D,
		"mol3d":    experiment.Mol3D,
	}[strings.ToLower(*app)]
	if !ok {
		fmt.Fprintf(os.Stderr, "lbsim: unknown app %q\n", *app)
		os.Exit(2)
	}
	stratKind, ok := map[string]experiment.StrategyKind{
		"none":           experiment.NoLB,
		"nolb":           experiment.NoLB,
		"refine":         experiment.Refine,
		"refineinternal": experiment.RefineInternal,
		"refineswap":     experiment.RefineSwap,
		"greedy":         experiment.Greedy,
		"threshold":      experiment.Threshold,
		"costaware":      experiment.CostAware,
	}[strings.ToLower(*strategy)]
	if !ok {
		fmt.Fprintf(os.Stderr, "lbsim: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	s := experiment.Scenario{
		App:          appKind,
		Cores:        *cores,
		Strategy:     stratKind,
		Seed:         *seed,
		BGWeight:     *bgWeight,
		BGIters:      *bgIters,
		Scale:        *scale,
		Hierarchical: *hier,
	}
	var rec *trace.Recorder
	if *chromePath != "" {
		rec = trace.NewRecorder()
		s.Trace = rec
	}
	switch {
	case *bg && *churn:
		fmt.Fprintln(os.Stderr, "lbsim: -bg and -churn are mutually exclusive")
		os.Exit(2)
	case *bg:
		s.BG = experiment.BGWave2D
	case *churn:
		s.BG = experiment.BGCloudChurn
	}
	res := experiment.Run(s)

	fmt.Printf("app:            %v on %d cores, strategy %v, seed %d\n", appKind, *cores, stratKind, *seed)
	fmt.Printf("wall time:      %.3f s\n", res.AppWall)
	if !math.IsNaN(res.BGWall) {
		fmt.Printf("bg wall time:   %.3f s (weight %.1f)\n", res.BGWall, *bgWeight)
	}
	fmt.Printf("avg power:      %.1f W over the application's nodes\n", res.AvgPowerW)
	fmt.Printf("energy:         %.1f J\n", res.EnergyJ)
	fmt.Printf("LB steps:       %d\n", res.LBSteps)
	fmt.Printf("migrations:     %d\n", res.Migrations)

	if *chromePath != "" {
		f, err := os.Create(*chromePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("trace:          %s\n", *chromePath)
	}
}
