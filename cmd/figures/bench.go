package main

import (
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"cloudlb/internal/experiment"
	"cloudlb/internal/runner"
	"cloudlb/internal/sim"
)

// The -benchjson mode measures the two layers this tool's runtime is made
// of — the engine's per-event scheduling cost and a whole figure panel —
// and writes the results as machine-readable JSON, so the performance
// trajectory of the repository is recorded alongside the figures
// themselves. The container/heap baseline replicates the engine's
// pre-optimization event queue (interface{} boxing, one allocation per
// scheduled event) for an in-place before/after comparison.

type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// GoMaxProcs records the parallelism this entry ran at. The sharded
	// scheduler entries pin it to measure overhead (1) and speedup (>1)
	// separately; every other entry inherits the process-wide value.
	GoMaxProcs   int     `json:"go_max_procs"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

type benchReport struct {
	GoMaxProcs int          `json:"go_max_procs"`
	NumCPU     int          `json:"num_cpu"`
	Workers    int          `json:"scenario_workers"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// boxedEvent and boxedHeap reproduce the old event queue for the baseline
// benchmark; the live engine no longer contains this code path.
type boxedEvent struct {
	at  sim.Time
	seq uint64
}

type boxedHeap []*boxedEvent

func (h boxedHeap) Len() int { return len(h) }
func (h boxedHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h boxedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedHeap) Push(x interface{}) { *h = append(*h, x.(*boxedEvent)) }
func (h *boxedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

const benchQueueDepth = 256

// benchEngineSchedule churns the live engine: schedule one event, fire one
// event, with a steady queue of pending work. One op == one event.
func benchEngineSchedule(b *testing.B) {
	e := sim.NewEngine()
	nop := func() {}
	for i := 0; i < benchQueueDepth; i++ {
		e.At(sim.Time(i), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(sim.Duration(benchQueueDepth), nop)
		e.Step()
	}
}

// benchBoxedBaseline is the same churn against the pre-optimization
// container/heap queue. One op == one event.
func benchBoxedBaseline(b *testing.B) {
	var h boxedHeap
	for i := 0; i < benchQueueDepth; i++ {
		heap.Push(&h, &boxedEvent{at: sim.Time(i * 7 % benchQueueDepth), seq: uint64(i)})
	}
	seq := uint64(benchQueueDepth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := heap.Pop(&h).(*boxedEvent)
		heap.Push(&h, &boxedEvent{at: ev.at + sim.Duration(benchQueueDepth), seq: seq})
		seq++
	}
}

// entry converts one testing.Benchmark result into the report row.
func entry(name string, r testing.BenchmarkResult) benchEntry {
	return benchEntry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
}

// runBenchJSON runs the benchmark suite and writes the report to path.
func runBenchJSON(path string, workers int) error {
	report := benchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    workers,
	}

	engine := entry("EngineSchedule", testing.Benchmark(benchEngineSchedule))
	engine.EventsPerSec = 1e9 / engine.NsPerOp
	report.Benchmarks = append(report.Benchmarks, engine)

	boxed := entry("EventHeapBoxedBaseline", testing.Benchmark(benchBoxedBaseline))
	boxed.EventsPerSec = 1e9 / boxed.NsPerOp
	report.Benchmarks = append(report.Benchmarks, boxed)

	// One Wave2D superstep on a live world in steady state, no LB: the
	// hot path the pooling work targets, isolated from startup and LB
	// machinery. The world is built once, outside the timed region.
	steady := experiment.NewSteadyIterBench()
	report.Benchmarks = append(report.Benchmarks, entry("IterationSteadyState",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				steady.StepOnce()
			}
		})))

	// A whole Figure 2(a) panel cell through the scenario pool: throughput
	// here is simulated events per real second, the headline number the
	// parallel runner exists to raise.
	var panelEvents uint64
	pool := &runner.Pool{Workers: workers}
	batch := experiment.EvaluateScenarios(experiment.Jacobi2D, []int{4}, []int64{1}, 0.15)
	panel := entry("Fig2aPanelCell", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, stats, err := pool.RunBatch(context.Background(), batch)
			if err != nil {
				b.Fatal(err)
			}
			panelEvents = stats.Events
		}
	}))
	panel.EventsPerSec = float64(panelEvents) / (panel.NsPerOp / 1e9)
	report.Benchmarks = append(report.Benchmarks, panel)

	// Every figure and ablation bench from the root `go test -bench`
	// suite, via the shared workload set, so allocation and timing
	// regressions in any artifact's pipeline land in the committed record.
	for _, nb := range experiment.FigureBenchmarks() {
		run := nb.Run
		report.Benchmarks = append(report.Benchmarks, entry(nb.Name,
			testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					run()
				}
			})))
	}

	// The strategy-planning microbenches: one Plan call per op over the
	// synthetic clustered-hotspot snapshots, up to the Figure 7 cloud
	// allocation — the planning-cost scaling DiffusionLB exists to fix.
	for _, nb := range experiment.StrategyPlanBenchmarks() {
		run := nb.Run
		report.Benchmarks = append(report.Benchmarks, entry(nb.Name,
			testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					run()
				}
			})))
	}

	// The sharded-scheduler benches: the same heavyweight scenario at
	// shard counts {1, 8}, the 8-shard one at GOMAXPROCS 1 (pure window
	// overhead, no parallel hardware) and again at GOMAXPROCS >= 8 (the
	// wall-clock speedup the shards exist for). The host's real core
	// count bounds what the latter can show; go_max_procs records what
	// each entry actually ran at.
	report.Benchmarks = append(report.Benchmarks,
		entry("Fig2Mol3DCellShards1", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			nb := experiment.ShardedBench(1)
			for i := 0; i < b.N; i++ {
				nb.Run()
			}
		})))
	for _, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		e := entry(fmt.Sprintf("Fig2Mol3DCellShards8P%d", procs), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			nb := experiment.ShardedBench(8)
			for i := 0; i < b.N; i++ {
				nb.Run()
			}
		}))
		runtime.GOMAXPROCS(prev)
		e.GoMaxProcs = procs
		report.Benchmarks = append(report.Benchmarks, e)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, e := range report.Benchmarks {
		fmt.Fprintf(os.Stderr, "%-24s %12.1f ns/op %6d allocs/op", e.Name, e.NsPerOp, e.AllocsPerOp)
		if e.EventsPerSec > 0 {
			fmt.Fprintf(os.Stderr, " %14.0f events/s", e.EventsPerSec)
		}
		fmt.Fprintln(os.Stderr)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
