// Command figures regenerates the data behind every figure of the paper
// "Cloud Friendly Load Balancing for HPC Applications: Preliminary Work"
// (ICPP 2012): ASCII timelines for Figures 1 and 3, and penalty /
// power / energy tables for Figures 2 and 4.
//
// Usage:
//
//	figures -fig all
//	figures -fig 2b -cores 4,8,16,32 -seeds 3 -scale 1.0
//	figures -fig 3 -svg fig3.svg
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cloudlb/internal/experiment"
	"cloudlb/internal/obs"
	"cloudlb/internal/plot"
	"cloudlb/internal/profiling"
	"cloudlb/internal/runner"
	"cloudlb/internal/service"
	"cloudlb/internal/sim"
	"cloudlb/internal/xnet"
)

// fig2Chart builds the grouped-bar version of a Figure 2 panel.
func fig2Chart(kind experiment.AppKind, evals []experiment.Eval) plot.BarChart {
	c := plot.BarChart{
		Title:  fmt.Sprintf("Figure 2: timing penalty, %s", kind),
		YLabel: "timing penalty %",
	}
	var noLB, lb, bgNo, bgLB []float64
	for _, e := range evals {
		c.Categories = append(c.Categories, strconv.Itoa(e.Cores))
		noLB = append(noLB, e.PenAppNoLB)
		lb = append(lb, e.PenAppLB)
		bgNo = append(bgNo, e.PenBGNoLB)
		bgLB = append(bgLB, e.PenBGLB)
	}
	c.Series = []plot.Series{
		{Name: "noLB", Values: noLB},
		{Name: "LB", Values: lb},
		{Name: "BG noLB", Values: bgNo},
		{Name: "BG LB", Values: bgLB},
	}
	return c
}

// fig4Chart builds the grouped-bar version of a Figure 4 panel.
func fig4Chart(kind experiment.AppKind, evals []experiment.Eval) plot.BarChart {
	c := plot.BarChart{
		Title:  fmt.Sprintf("Figure 4: power (W) and energy overhead (%%), %s", kind),
		YLabel: "W / %",
	}
	var pNo, pLB, eNo, eLB []float64
	for _, e := range evals {
		c.Categories = append(c.Categories, strconv.Itoa(e.Cores))
		pNo = append(pNo, e.PowerNoLB)
		pLB = append(pLB, e.PowerLB)
		eNo = append(eNo, e.EnergyOvhNoLB)
		eLB = append(eLB, e.EnergyOvhLB)
	}
	c.Series = []plot.Series{
		{Name: "noLB power", Values: pNo},
		{Name: "LB power", Values: pLB},
		{Name: "noLB energy ovh", Values: eNo},
		{Name: "LB energy ovh", Values: eLB},
	}
	return c
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 2a, 2b, 2c, 3, 4a, 4b, 4c, 5, 6, 7, sweep, compare, all (5-7, the cloud extensions, are opt-in)")
	scale := flag.Float64("scale", 1.0, "iteration-count scale factor (smaller = faster)")
	seedN := flag.Int("seeds", 3, "number of seeds to average over (the paper uses 3 runs)")
	coresFlag := flag.String("cores", "4,8,16,32", "comma-separated core counts")
	svgPath := flag.String("svg", "", "also write an SVG timeline (figures 1 and 3)")
	csvDir := flag.String("csv", "", "also write per-panel CSV files (figures 2 and 4) into this directory")
	plotDir := flag.String("plots", "", "also write per-panel SVG bar charts (figures 2 and 4) into this directory")
	width := flag.Int("width", 100, "ASCII timeline width")
	parallel := flag.Int("parallel", 0, "concurrent scenario workers (0 = GOMAXPROCS); any value produces identical output")
	shardsFlag := flag.String("shards", "1", "event-scheduler shards per scenario: 1 = classic single engine, N = parallel node shards, auto = one per node up to GOMAXPROCS; any value produces identical output")
	dropPct := flag.Float64("droppct", 0, "percentage of inter-node transmissions lost and retransmitted in every scenario (0 = reliable; figure 6 sweeps its own drop axis)")
	straggle := flag.String("straggle", "", "straggler nodes and slowdown factor, NODES:FACTOR (e.g. \"1,3:4\"), applied to every scenario")
	netSeed := flag.Int64("netseed", 0, "seed of the packet-drop lottery")
	benchJSON := flag.String("benchjson", "", "run the engine and figure benchmarks, write JSON results to this path, and exit")
	submit := flag.String("submit", "", `evaluate table figures (2, 4, 5, 6, compare, sweep) on a running scenario service instead of in-process (server base URL; start one with -serve and -store)`)
	prof := profiling.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		return
	}

	cores, err := parseCores(*coresFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	shards, err := experiment.ParseShards(*shardsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	stragNodes, stragFactor, err := experiment.ParseStraggle(*straggle)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	netCfg := xnet.Config{DropPct: *dropPct, Seed: *netSeed}
	if len(stragNodes) > 0 {
		netCfg.StragglerNodes = stragNodes
		netCfg.StragglerFactor = stragFactor
	}
	seeds := make([]int64, *seedN)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}

	// All scenario batches fan out over one pool; Ctrl-C cancels the batch
	// in flight. The figure text on stdout is byte-identical at any worker
	// count (results are slotted by batch index), so the committed results/
	// tree regenerates exactly regardless of -parallel.
	// Metrics (when enabled) ride along on every scenario via Options;
	// they accumulate across figures into one registry written on exit and
	// never touch stdout, so the oracle stays byte-identical either way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// -log attaches a run trace to the context so every figure's batches
	// record their spans (and WARN-level anomalies) against one trace ID.
	log, err := prof.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	if log != nil {
		tr := obs.NewTrace("figures", log)
		ctx = obs.NewContext(ctx, tr)
		log.Info("figures run starting", "trace_id", tr.ID(), "fig", *fig, "seeds", *seedN)
	}
	pool := &runner.Pool{Workers: *parallel, Metrics: prof.Registry(), Progress: prof.Tracker()}
	opts := experiment.Options{Executor: pool.Executor(), Metrics: prof.Registry(), LBTimeline: prof.Timeline(), Shards: shards, Net: netCfg}
	start := time.Now()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	var client *service.Client
	if *submit != "" {
		if *csvDir != "" || *plotDir != "" || *svgPath != "" {
			fmt.Fprintln(os.Stderr, "figures: -submit prints the server's CSV artifact to stdout; -csv/-plots/-svg need local evaluation")
			os.Exit(2)
		}
		client = &service.Client{BaseURL: *submit}
	}
	// remote evaluates one table figure through the scenario service: the
	// locally assembled Spec is posted, the job awaited (a repeat of the
	// same Spec is a cache hit served without simulating) and the named
	// CSV artifact printed in place of the local ASCII table.
	remote := func(method string, spec experiment.Spec, artifact string) {
		spec.Net = netCfg
		view, err := client.Run(ctx, service.Request{Method: method, Spec: spec})
		if err != nil {
			fail(err)
		}
		if view.State == service.StateFailed {
			fail(fmt.Errorf("remote job %s failed: %s", view.ID, view.Error))
		}
		source := "computed"
		if view.Cached {
			source = "cache hit"
		}
		art, ok := view.Artifacts[artifact]
		if !ok {
			fail(fmt.Errorf("remote job %s has no %s artifact", view.ID, artifact))
		}
		b, err := client.Artifact(ctx, art)
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(b)
		fmt.Fprintf(os.Stderr, "figures: job %s (%s): %s is %s%s\n",
			view.ID, source, artifact, strings.TrimRight(*submit, "/"), art.URL)
		fmt.Println()
	}

	apps := map[string]experiment.AppKind{
		"a": experiment.Jacobi2D,
		"b": experiment.Wave2D,
		"c": experiment.Mol3D,
	}

	run := func(f string) {
		if client != nil {
			switch f {
			case "1", "3", "7", "diffusion":
				fail(fmt.Errorf("figure %q renders locally (timelines / host-time measurements); run it without -submit", f))
			}
		}
		switch {
		case f == "1":
			fig1(*scale, *width, *svgPath)
		case f == "3":
			fig3(*scale, *width, *svgPath)
		case f == "compare":
			fmt.Println("Strategy comparison (Wave2D, 8 cores, interfered):")
			spec := experiment.Spec{
				App: experiment.Wave2D, Cores: []int{8}, Seeds: []int64{1}, Scale: *scale,
				Strategies: []experiment.StrategyKind{experiment.NoLB, experiment.Refine, experiment.RefineInternal,
					experiment.RefineSwap, experiment.Greedy, experiment.Threshold, experiment.CostAware},
			}
			if client != nil {
				remote("compare", spec, "table.csv")
				break
			}
			results, err := spec.CompareStrategies(ctx, opts)
			if err != nil {
				fail(err)
			}
			experiment.CompareTable(results).Write(os.Stdout)
			fmt.Println()
		case f == "5":
			// Extension beyond the paper: cloud elasticity. One spot
			// revocation with a short warning takes a core away mid-run and
			// a replacement arrives later; each strategy's penalty is
			// measured against its own fault-free baseline.
			const elasticCores = 8
			sched := experiment.Fig5Schedule(elasticCores, *scale)
			r := sched[0]
			fmt.Printf("Figure 5: timing penalty of a spot revocation (Wave2D, %d cores)\n", elasticCores)
			fmt.Printf("PE %d warned at t=%.3fs, core offline %.3f-%.3fs, replacement core %d\n",
				r.PE, float64(r.At-r.Warning), float64(r.At), float64(r.Restore), r.ReplacementCore)
			spec := experiment.Spec{
				App: experiment.Wave2D, Cores: []int{elasticCores}, Seeds: seeds, Scale: *scale,
				Strategies: []experiment.StrategyKind{experiment.NoLB, experiment.Refine, experiment.RefineSwap},
				Faults:     sched,
			}
			if client != nil {
				remote("elasticity", spec, "table.csv")
				break
			}
			evals, err := spec.Elasticity(ctx, opts)
			if err != nil {
				fail(err)
			}
			tab := experiment.Fig5Table(evals)
			tab.Write(os.Stdout)
			if *csvDir != "" {
				path := filepath.Join(*csvDir, "fig5_wave2d.csv")
				out, err := os.Create(path)
				if err != nil {
					fail(err)
				}
				if err := tab.WriteCSV(out); err != nil {
					fail(err)
				}
				out.Close()
				fmt.Printf("wrote %s\n", path)
			}
			fmt.Println()
		case f == "6" || f == "net":
			// Extension beyond the paper: network interference, the cloud
			// counterpart of Figure 2's CPU interference. The interfered
			// Fig. 2 workload runs a drop% x straggler sweep per strategy;
			// penalties are against the same strategy's run on the reliable
			// uniform network, so the added cost of the degraded network —
			// including the balancer's own migration traffic crossing it —
			// is isolated from the CPU-interference cost.
			const netCores = 8
			fmt.Printf("Figure 6: timing penalty of network interference (Wave2D, %d cores, interfered)\n", netCores)
			fmt.Printf("drop %% x straggler sweep; the straggler is the allocation's last node, its links get latency x factor and bandwidth / factor\n")
			spec := experiment.Spec{
				App: experiment.Wave2D, Cores: []int{netCores}, Seeds: seeds, Scale: *scale,
				Strategies:      []experiment.StrategyKind{experiment.NoLB, experiment.Refine},
				DropPcts:        []float64{0, 2, 10},
				StraggleFactors: []float64{1, 16},
				Net:             netCfg,
			}
			if client != nil {
				remote("net", spec, "table.csv")
				break
			}
			evals, err := spec.NetworkInterference(ctx, opts)
			if err != nil {
				fail(err)
			}
			tab := experiment.Fig6Table(evals)
			tab.Write(os.Stdout)
			if *csvDir != "" {
				path := filepath.Join(*csvDir, "fig6_wave2d.csv")
				out, err := os.Create(path)
				if err != nil {
					fail(err)
				}
				if err := tab.WriteCSV(out); err != nil {
					fail(err)
				}
				out.Close()
				fmt.Printf("wrote %s\n", path)
			}
			fmt.Println()
		case f == "7" || f == "diffusion":
			// Extension beyond the paper: load balancing at cloud scale.
			// The interfered Wave2D workload at 1024 cores / ~100k chares,
			// DiffusionLB's distributed neighbor-exchange protocol against
			// the centralized refiners (flat and tree gather). The table is
			// fully deterministic; the host-time planning cost — the number
			// the distributed protocol exists to shrink — is machine-
			// dependent and goes to stderr.
			fmt.Println("Figure 7: load balancing at cloud scale (Wave2D, 1024 cores, ~100k chares, interfered)")
			fmt.Println("distributed diffusion vs centralized refinement; peak state B is the largest per-PE LB planning state")
			evals, err := experiment.Fig7(ctx, opts, *scale)
			if err != nil {
				fail(err)
			}
			tab := experiment.Fig7Table(evals)
			tab.Write(os.Stdout)
			if *csvDir != "" {
				path := filepath.Join(*csvDir, "fig7_wave2d.csv")
				out, err := os.Create(path)
				if err != nil {
					fail(err)
				}
				if err := tab.WriteCSV(out); err != nil {
					fail(err)
				}
				out.Close()
				fmt.Printf("wrote %s\n", path)
			}
			for _, e := range evals {
				fmt.Fprintf(os.Stderr, "figures: fig7 %-14s Strategy.Plan host time %.3fs\n", e.Label, e.PlanHostSeconds)
			}
			fmt.Println()
		case f == "sweep":
			fmt.Println("Sensitivity of RefineLB's design parameters (Wave2D, 8 cores):")
			spec := experiment.Spec{
				App: experiment.Wave2D, Cores: []int{8}, Seeds: []int64{1}, Scale: *scale,
				EpsFracs: []float64{0.01, 0.02, 0.05, 0.1}, Periods: []int{5, 10, 20, 40},
			}
			if client != nil {
				remote("sweep", spec, "table.csv")
				break
			}
			points, err := spec.SweepRefineParams(ctx, opts)
			if err != nil {
				fail(err)
			}
			experiment.SweepTable(points).Write(os.Stdout)
			fmt.Println()
		case strings.HasPrefix(f, "2") || strings.HasPrefix(f, "4"):
			suffix := strings.TrimLeft(f, "24")
			var kinds []experiment.AppKind
			if suffix == "" {
				kinds = []experiment.AppKind{experiment.Jacobi2D, experiment.Wave2D, experiment.Mol3D}
			} else if k, ok := apps[suffix]; ok {
				kinds = []experiment.AppKind{k}
			} else {
				fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", f)
				os.Exit(2)
			}
			for _, kind := range kinds {
				spec := experiment.Spec{App: kind, Cores: cores, Seeds: seeds, Scale: *scale}
				if client != nil {
					// The evaluate method stores Figure 2 as table.csv and
					// Figure 4 as energy.csv under one cache entry.
					art := "table.csv"
					if strings.HasPrefix(f, "4") {
						art = "energy.csv"
					}
					fmt.Printf("Figure %c (%s)\n", f[0], kind)
					remote("evaluate", spec, art)
					continue
				}
				evals, err := spec.Evaluate(ctx, opts)
				if err != nil {
					fail(err)
				}
				var tab interface {
					Write(io.Writer)
					WriteCSV(io.Writer) error
				}
				if strings.HasPrefix(f, "2") {
					fmt.Printf("Figure 2 (%s): timing penalty vs cores\n", kind)
					tab = experiment.Fig2Table(kind, evals)
				} else {
					fmt.Printf("Figure 4 (%s): power and normalized energy overhead\n", kind)
					tab = experiment.Fig4Table(kind, evals)
				}
				tab.Write(os.Stdout)
				if *plotDir != "" {
					name := fmt.Sprintf("fig%c_%s.svg", f[0], strings.ToLower(kind.String()))
					path := filepath.Join(*plotDir, name)
					out, err := os.Create(path)
					if err != nil {
						fmt.Fprintln(os.Stderr, "figures:", err)
						os.Exit(1)
					}
					var chart plot.BarChart
					if strings.HasPrefix(f, "2") {
						chart = fig2Chart(kind, evals)
					} else {
						chart = fig4Chart(kind, evals)
					}
					if err := chart.Render(out); err != nil {
						fmt.Fprintln(os.Stderr, "figures:", err)
						os.Exit(1)
					}
					out.Close()
					fmt.Printf("wrote %s\n", path)
				}
				if *csvDir != "" {
					name := fmt.Sprintf("fig%c_%s.csv", f[0], strings.ToLower(kind.String()))
					path := filepath.Join(*csvDir, name)
					out, err := os.Create(path)
					if err != nil {
						fmt.Fprintln(os.Stderr, "figures:", err)
						os.Exit(1)
					}
					if err := tab.WriteCSV(out); err != nil {
						fmt.Fprintln(os.Stderr, "figures:", err)
						os.Exit(1)
					}
					out.Close()
					fmt.Printf("wrote %s\n", path)
				}
				fmt.Println()
			}
		default:
			fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", f)
			os.Exit(2)
		}
	}

	if *fig == "all" {
		for _, f := range []string{"1", "2a", "2b", "2c", "3", "4a", "4b", "4c", "sweep", "compare"} {
			run(f)
		}
	} else {
		run(*fig)
	}

	// Perf summary on stderr: stdout is the byte-exact figure oracle and
	// must not change with worker count or host speed.
	wall, events, scenarios := pool.Totals()
	if scenarios > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d scenarios, %d simulated events in %.2fs total wall-clock (%.3gM events/s, %d workers)\n",
			scenarios, events, time.Since(start).Seconds(), float64(events)/wall.Seconds()/1e6, pool.WorkerCount())
	}

	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fig1(scale float64, width int, svgPath string) {
	res := experiment.Fig1(scale)
	fmt.Println("Figure 1: background task disturbing load balance (Wave2D, 4 cores, no LB)")
	fmt.Printf("1-core background job starts at t=%.3fs on core 3; run finishes at t=%.3fs\n",
		float64(res.HogStart), float64(res.AppFinish))
	// Window (a): before interference. Window (b): after.
	span := (res.AppFinish - res.HogStart) / 4
	fmt.Println("\n(a) no BG task:")
	res.Trace.RenderASCII(os.Stdout, res.Cores, res.HogStart-span, res.HogStart, width)
	fmt.Println("\n(b) core 3 overloaded:")
	res.Trace.RenderASCII(os.Stdout, res.Cores, res.HogStart, res.HogStart+span, width)
	writeSVG(svgPath, func(f *os.File) {
		res.Trace.RenderSVG(f, res.Cores, 0, res.AppFinish, 1000)
	})
	fmt.Println()
}

func fig3(scale float64, width int, svgPath string) {
	res := experiment.Fig3(scale)
	fmt.Println("Figure 3: load balancer adapting to dynamic interference (Wave2D, 4 cores, RefineLB)")
	fmt.Printf("BG on core 1: %.2f-%.2fs; BG on core 3: %.2f-%.2fs; finish %.2fs; %d migrations\n",
		float64(res.Hog1Start), float64(res.Hog1Stop),
		float64(res.Hog2Start), float64(res.Hog2Stop),
		float64(res.AppFinish), res.Migrations)
	phases := []struct {
		label    string
		from, to sim.Time
	}{
		{"(a) core 1 overloaded", res.Hog1Start, res.Hog1Start + (res.Hog1Stop-res.Hog1Start)/3},
		{"(b) load balanced", res.Hog1Stop - (res.Hog1Stop-res.Hog1Start)/3, res.Hog1Stop},
		{"(c) no BG task", res.Hog1Stop + (res.Hog2Start-res.Hog1Stop)/4, res.Hog2Start - (res.Hog2Start-res.Hog1Stop)/4},
		{"(d) core 3 overloaded", res.Hog2Start, res.Hog2Start + (res.Hog2Stop-res.Hog2Start)/3},
		{"(e) load balanced", res.Hog2Stop - (res.Hog2Stop-res.Hog2Start)/3, res.Hog2Stop},
	}
	for _, p := range phases {
		fmt.Println("\n" + p.label + ":")
		res.Trace.RenderASCII(os.Stdout, res.Cores, p.from, p.to, width)
	}
	writeSVG(svgPath, func(f *os.File) {
		res.Trace.RenderSVG(f, res.Cores, 0, res.AppFinish, 1200)
	})
	fmt.Println()
}

func writeSVG(path string, render func(*os.File)) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	defer f.Close()
	render(f)
	fmt.Printf("wrote %s\n", path)
}
