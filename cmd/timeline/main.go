// Command timeline renders per-core execution timelines (the Projections
// view of the paper's Figures 1 and 3) for a Wave2D run under dynamic
// interference, as ASCII and optionally SVG.
//
// Usage:
//
//	timeline                         # Figure 3-style run, ASCII phases
//	timeline -strategy none          # Figure 1-style: watch imbalance persist
//	timeline -svg out.svg            # also write the full SVG timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cloudlb/internal/apps"
	"cloudlb/internal/charm"
	"cloudlb/internal/core"
	"cloudlb/internal/interfere"
	"cloudlb/internal/machine"
	"cloudlb/internal/metrics"
	"cloudlb/internal/profiling"
	"cloudlb/internal/projections"
	"cloudlb/internal/sim"
	"cloudlb/internal/trace"
	"cloudlb/internal/xnet"
)

// normalize maps an imbalance series (>=1 when active) to [0,1] for
// sparkline rendering: 1.0 (balanced) maps to 0, numCores maps to 1.
func normalize(series []float64) []float64 {
	out := make([]float64, len(series))
	for i, v := range series {
		if v <= 1 {
			out[i] = 0
			continue
		}
		out[i] = (v - 1) / 3 // 4 cores: worst case max/mean = 4
	}
	return out
}

func main() {
	strategy := flag.String("strategy", "refine", "refine or none")
	iters := flag.Int("iters", 200, "Wave2D iterations")
	width := flag.Int("width", 100, "ASCII timeline width")
	profile := flag.Bool("profile", false, "also print the Projections-style analysis (time profile, imbalance, top chares)")
	svgPath := flag.String("svg", "", "write an SVG timeline to this path")
	chromePath := flag.String("chrome", "", "write a Chrome trace-event JSON (chrome://tracing, Perfetto) to this path")
	hog1 := flag.Float64("hog1", 1.0, "start of the core-1 interfering job (s)")
	hog1stop := flag.Float64("hog1stop", 3.0, "end of the core-1 job (s)")
	hog2 := flag.Float64("hog2", 4.5, "start of the core-3 interfering job (s)")
	hog2stop := flag.Float64("hog2stop", 6.5, "end of the core-3 job (s)")
	lbSteps := flag.Bool("lbsteps", false, "print the per-LB-step table (moves, strategy wall time, per-PE load before/after)")
	prof := profiling.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "timeline:", err)
		os.Exit(1)
	}

	var strat core.Strategy
	switch *strategy {
	case "refine":
		strat = &core.RefineLB{EpsilonFrac: 0.02}
	case "none":
		strat = nil
	default:
		fmt.Fprintf(os.Stderr, "timeline: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	eng := sim.NewEngine()
	mach := machine.New(eng, machine.Config{Nodes: 1, CoresPerNode: 4, CoreSpeed: 1, Metrics: prof.Registry()})
	net := xnet.New(mach, xnet.DefaultConfig())
	rec := trace.NewRecorder()

	// The LB-step timeline feeds both the -lbsteps table and the -serve
	// /api/lbsteps endpoint; either flag enables it.
	tl := prof.Timeline()
	if tl == nil && *lbSteps {
		tl = &metrics.LBTimeline{}
	}
	rts := charm.NewRTS(charm.Config{
		Machine: mach, Net: net, Cores: []int{0, 1, 2, 3},
		Strategy: strat, Trace: rec, Name: "wave",
		Metrics: prof.Registry(), LBTimeline: tl,
	})
	apps.NewStencilApp(rts, apps.StencilConfig{
		Array: "wave", GridW: 256, GridH: 128, CharesX: 16, CharesY: 8,
		Iters: *iters, SyncEvery: 5, CostPerCell: 3e-6,
		NewKernel: apps.NewWaveKernel(256, 128, 0.4),
	})
	interfere.StartHog(mach, interfere.HogConfig{Core: 1, Start: sim.Time(*hog1), Stop: sim.Time(*hog1stop), Trace: rec, Name: "vm-a"})
	interfere.StartHog(mach, interfere.HogConfig{Core: 3, Start: sim.Time(*hog2), Stop: sim.Time(*hog2stop), Trace: rec, Name: "vm-b"})

	log, err := prof.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "timeline:", err)
		os.Exit(2)
	}
	log.Info("timeline run starting", "strategy", *strategy, "iters", *iters)

	tracker := prof.Tracker()
	tracker.BatchQueued(1)
	tracker.ScenarioStarted(0)
	t0 := time.Now()
	rts.Start()
	for !rts.Finished() && eng.Now() < 1000 {
		if err := eng.RunUntil(eng.Now() + 1); err != nil {
			panic(err)
		}
		// Publish per-core busy/idle so a live -serve scrape sees them move.
		mach.PublishMetrics()
	}
	mach.PublishMetrics()
	tracker.ScenarioDone(0, time.Since(t0), eng.Executed())
	log.Info("timeline run complete", "wall_s", time.Since(t0).Seconds(),
		"events", eng.Executed(), "migrations", rts.Migrations(), "lb_steps", rts.LBSteps())
	finish := rts.FinishTime()
	fmt.Printf("Wave2D (%s) finished at %.2fs, %d migrations, %d LB steps\n\n",
		*strategy, float64(finish), rts.Migrations(), rts.LBSteps())

	cores := []int{0, 1, 2, 3}
	rec.RenderASCII(os.Stdout, cores, 0, finish, *width)

	if *lbSteps {
		fmt.Println("\nper-LB-step timeline:")
		if err := tl.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "timeline:", err)
			os.Exit(1)
		}
	}

	if *profile {
		fmt.Println()
		projections.Profile(rec, cores, 0, finish, *width).Write(os.Stdout)
		fmt.Printf("imb  |%s|  (max/mean per-core task load; flat=balanced)\n",
			projections.Sparkline(normalize(projections.Imbalance(rec, cores, 0, finish, *width))))
		fmt.Println()
		fmt.Println("heaviest chares:")
		projections.WriteChareStats(os.Stdout, projections.ChareStats(rec), 10)
	}

	if *chromePath != "" {
		f, err := os.Create(*chromePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timeline:", err)
			os.Exit(1)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "timeline:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote %s\n", *chromePath)
	}

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timeline:", err)
			os.Exit(1)
		}
		rec.RenderSVG(f, cores, 0, finish, 1200)
		f.Close()
		fmt.Printf("\nwrote %s\n", *svgPath)
	}

	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "timeline:", err)
		os.Exit(1)
	}
}
