package cloudlb

// One benchmark per paper artifact (figures 1-4) plus the ablation
// benches called out in DESIGN.md. Each benchmark runs a reduced-scale
// version of the corresponding experiment and reports the headline
// quantities as custom metrics, so `go test -bench=.` both exercises the
// full pipeline and prints the reproduced shape. Full-scale tables come
// from `go run ./cmd/figures`.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"cloudlb/internal/core"
	"cloudlb/internal/experiment"
	"cloudlb/internal/lb"
	"cloudlb/internal/trace"
)

// benchScale keeps each iteration under ~a second while leaving enough
// LB periods for the balancer to converge.
const benchScale = experiment.BenchScale

var benchSeeds = []int64{1}

// benchEvaluate runs a Spec's Figure 2/4 matrix sequentially, failing the
// benchmark on error (unreachable for sequential in-process dispatch).
func benchEvaluate(b *testing.B, sp experiment.Spec) []experiment.Eval {
	b.Helper()
	evals, err := sp.Evaluate(context.Background(), experiment.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return evals
}

// reportEval reports the headline quantities of the widest evaluation
// row (the one with the most cores), selected by field rather than by
// slice position so a reordered or truncated core-count list cannot
// silently change what the metrics describe.
func reportEval(b *testing.B, evals []experiment.Eval) {
	b.Helper()
	if len(evals) == 0 {
		b.Fatal("experiment produced no evaluations")
	}
	widest := evals[0]
	for _, e := range evals[1:] {
		if e.Cores > widest.Cores {
			widest = e
		}
	}
	b.ReportMetric(widest.PenAppNoLB, "noLB_penalty_%")
	b.ReportMetric(widest.PenAppLB, "LB_penalty_%")
	b.ReportMetric(float64(widest.MigrationsLB), "migrations")
}

// BenchmarkFig2Jacobi2D regenerates Figure 2(a): Jacobi2D timing penalty
// with and without RefineLB under a 2-core interfering Wave2D job.
func BenchmarkFig2Jacobi2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := benchEvaluate(b, experiment.Spec{App: experiment.Jacobi2D, Cores: []int{4, 8}, Seeds: benchSeeds, Scale: benchScale})
		if i == b.N-1 {
			reportEval(b, evals)
		}
	}
}

// BenchmarkFig2Wave2D regenerates Figure 2(b).
func BenchmarkFig2Wave2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := benchEvaluate(b, experiment.Spec{App: experiment.Wave2D, Cores: []int{4, 8}, Seeds: benchSeeds, Scale: benchScale})
		if i == b.N-1 {
			reportEval(b, evals)
		}
	}
}

// BenchmarkFig2Mol3D regenerates Figure 2(c): the internally imbalanced
// MD code under a background job the OS prefers 4:1.
func BenchmarkFig2Mol3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Mol3D needs a few more LB periods than the stencils to
		// converge under the 4x-preferred background job.
		evals := benchEvaluate(b, experiment.Spec{App: experiment.Mol3D, Cores: []int{4, 8}, Seeds: benchSeeds, Scale: 0.4})
		if i == b.N-1 {
			reportEval(b, evals)
		}
	}
}

// BenchmarkFig4Energy regenerates Figure 4's quantities (average power
// and normalized energy overhead) for Wave2D.
func BenchmarkFig4Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := benchEvaluate(b, experiment.Spec{App: experiment.Wave2D, Cores: []int{8}, Seeds: benchSeeds, Scale: benchScale})
		if i == b.N-1 {
			e := evals[0]
			b.ReportMetric(e.PowerNoLB, "noLB_W")
			b.ReportMetric(e.PowerLB, "LB_W")
			b.ReportMetric(e.EnergyOvhNoLB, "noLB_energy_ovh_%")
			b.ReportMetric(e.EnergyOvhLB, "LB_energy_ovh_%")
		}
	}
}

// BenchmarkFig1Timeline regenerates Figure 1: a 1-core job landing
// mid-run on one core of a 4-core Wave2D run without load balancing.
func BenchmarkFig1Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig1(benchScale)
		if i == b.N-1 {
			after := res.Trace.BusyFraction(3, trace.KindBackground, res.HogStart, res.AppFinish)
			b.ReportMetric(after*100, "bg_share_after_%")
		}
	}
}

// BenchmarkFig3Adaptation regenerates Figure 3: RefineLB adapting as
// interference moves between cores.
func BenchmarkFig3Adaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig3(0.5)
		if i == b.N-1 {
			b.ReportMetric(float64(res.Migrations), "migrations")
		}
	}
}

// BenchmarkAblationBackgroundTerm (DESIGN.md A1): RefineLB versus the
// same refinement with the background-load term O_p removed. The world
// (experiment.AblationRun) has internal imbalance that leaves the hogged
// core lightly loaded, the case the paper's O_p term (Eq. 2) exists for.
func BenchmarkAblationBackgroundTerm(b *testing.B) {
	var aware, blind float64
	for i := 0; i < b.N; i++ {
		aware = experiment.AblationRun(&core.RefineLB{EpsilonFrac: 0.02})
		blind = experiment.AblationRun(&lb.RefineInternalLB{Inner: core.RefineLB{EpsilonFrac: 0.02}})
	}
	b.ReportMetric(aware, "aware_wall_s")
	b.ReportMetric(blind, "blind_wall_s")
}

// BenchmarkIterationSteadyState measures one Wave2D superstep in steady
// state with load balancing disabled: the runtime's per-iteration cost
// (edge messages, thread scheduling, kernel work) with no LB machinery
// and no startup transient, so hot-path regressions are visible
// separately from the end-to-end figure benches.
func BenchmarkIterationSteadyState(b *testing.B) {
	w := experiment.NewSteadyIterBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.StepOnce()
	}
}

// BenchmarkAblationRefineVsGreedy (DESIGN.md A2): migration counts and
// wall time of refinement versus from-scratch greedy reassignment.
func BenchmarkAblationRefineVsGreedy(b *testing.B) {
	var refineMigs, greedyMigs, refineWall, greedyWall float64
	for i := 0; i < b.N; i++ {
		r := experiment.Run(experiment.Scenario{
			App: experiment.Wave2D, Cores: 4, Strategy: experiment.Refine,
			BG: experiment.BGWave2D, Seed: 1, Scale: benchScale,
		})
		g := experiment.Run(experiment.Scenario{
			App: experiment.Wave2D, Cores: 4, Strategy: experiment.Greedy,
			BG: experiment.BGWave2D, Seed: 1, Scale: benchScale,
		})
		refineMigs, greedyMigs = float64(r.Migrations), float64(g.Migrations)
		refineWall, greedyWall = r.AppWall, g.AppWall
	}
	b.ReportMetric(refineMigs, "refine_migrations")
	b.ReportMetric(greedyMigs, "greedy_migrations")
	b.ReportMetric(refineWall, "refine_wall_s")
	b.ReportMetric(greedyWall, "greedy_wall_s")
}

// BenchmarkSweepRefineParams quantifies the sensitivity of RefineLB's
// design parameters (epsilon tolerance and LB period) called out in
// DESIGN.md.
func BenchmarkSweepRefineParams(b *testing.B) {
	var points []experiment.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiment.Spec{
			App: experiment.Wave2D, Cores: []int{4}, Seeds: benchSeeds, Scale: benchScale,
			EpsFracs: []float64{0.02, 0.1}, Periods: []int{10, 40},
		}.SweepRefineParams(context.Background(), experiment.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.EpsilonFrac == 0.02 && p.SyncEvery == 10 {
			b.ReportMetric(p.PenaltyPct, "eps02_p10_penalty_%")
		}
		if p.EpsilonFrac == 0.1 && p.SyncEvery == 40 {
			b.ReportMetric(p.PenaltyPct, "eps10_p40_penalty_%")
		}
	}
}

// BenchmarkExtensionCloudChurn (paper §VI future work): tenant VMs
// arriving and departing across every application core, RefineLB versus
// noLB.
func BenchmarkExtensionCloudChurn(b *testing.B) {
	var no, lbw float64
	var migs int
	for i := 0; i < b.N; i++ {
		n := experiment.Run(experiment.Scenario{
			App: experiment.Wave2D, Cores: 8, Strategy: experiment.NoLB,
			BG: experiment.BGCloudChurn, Seed: 1, Scale: 0.5,
		})
		l := experiment.Run(experiment.Scenario{
			App: experiment.Wave2D, Cores: 8, Strategy: experiment.Refine,
			BG: experiment.BGCloudChurn, Seed: 1, Scale: 0.5,
		})
		no, lbw, migs = n.AppWall, l.AppWall, l.Migrations
	}
	b.ReportMetric(no, "noLB_wall_s")
	b.ReportMetric(lbw, "LB_wall_s")
	b.ReportMetric(float64(migs), "migrations")
}

// BenchmarkShardedScheduler times the conservative sharded scheduler
// against the classic single engine on the heaviest scenario of the
// evaluation (Mol3D, full 32-core testbed, interfered, RefineLB). The
// shards=1 case is the classic engine; shards=8 runs one shard per node.
// Their results are byte-identical — the difference is wall clock, and
// on a multi-core host with GOMAXPROCS >= 8 the sharded run should win.
func BenchmarkShardedScheduler(b *testing.B) {
	for _, shards := range []int{1, 8} {
		nb := experiment.ShardedBench(shards)
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nb.Run()
			}
		})
	}
}

// BenchmarkStrategyPlan times one Strategy.Plan call per planner on
// synthetic clustered-hotspot snapshots from the paper testbed (32
// cores) up to the Figure 7 cloud allocation (1024 cores, ~100k tasks).
// The centralized planners sort or heapify the whole gathered task list;
// DiffusionLB runs every per-PE planner over only its local tasks and
// neighbor summaries, so its planning cost scales with the imbalance,
// not the allocation. RefineSwapLB's quadratic swap search is capped at
// 256 cores (see experiment.PlanBenchStrategies).
func BenchmarkStrategyPlan(b *testing.B) {
	for _, nb := range experiment.StrategyPlanBenchmarks() {
		run := nb.Run
		b.Run(strings.TrimPrefix(nb.Name, "StrategyPlan"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}

// BenchmarkAblationMigrationCost (DESIGN.md A3, the paper's future-work
// variant): the cost-gated balancer versus always-migrate refinement.
func BenchmarkAblationMigrationCost(b *testing.B) {
	var refine, gated float64
	for i := 0; i < b.N; i++ {
		r := experiment.Run(experiment.Scenario{
			App: experiment.Wave2D, Cores: 4, Strategy: experiment.Refine,
			BG: experiment.BGWave2D, Seed: 1, Scale: benchScale,
		})
		c := experiment.Run(experiment.Scenario{
			App: experiment.Wave2D, Cores: 4, Strategy: experiment.CostAware,
			BG: experiment.BGWave2D, Seed: 1, Scale: benchScale,
		})
		refine, gated = r.AppWall, c.AppWall
	}
	b.ReportMetric(refine, "refine_wall_s")
	b.ReportMetric(gated, "costaware_wall_s")
}
