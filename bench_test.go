package cloudlb

// One benchmark per paper artifact (figures 1-4) plus the ablation
// benches called out in DESIGN.md. Each benchmark runs a reduced-scale
// version of the corresponding experiment and reports the headline
// quantities as custom metrics, so `go test -bench=.` both exercises the
// full pipeline and prints the reproduced shape. Full-scale tables come
// from `go run ./cmd/figures`.

import (
	"testing"

	"cloudlb/internal/apps"
	"cloudlb/internal/charm"
	"cloudlb/internal/core"
	"cloudlb/internal/experiment"
	"cloudlb/internal/interfere"
	"cloudlb/internal/lb"
	"cloudlb/internal/machine"
	"cloudlb/internal/sim"
	"cloudlb/internal/trace"
	"cloudlb/internal/xnet"
)

// benchScale keeps each iteration under ~a second while leaving enough
// LB periods for the balancer to converge.
const benchScale = 0.15

var benchSeeds = []int64{1}

func reportEval(b *testing.B, evals []experiment.Eval) {
	b.Helper()
	last := evals[len(evals)-1]
	b.ReportMetric(last.PenAppNoLB, "noLB_penalty_%")
	b.ReportMetric(last.PenAppLB, "LB_penalty_%")
	b.ReportMetric(float64(last.MigrationsLB), "migrations")
}

// BenchmarkFig2Jacobi2D regenerates Figure 2(a): Jacobi2D timing penalty
// with and without RefineLB under a 2-core interfering Wave2D job.
func BenchmarkFig2Jacobi2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := experiment.Evaluate(experiment.Jacobi2D, []int{4, 8}, benchSeeds, benchScale)
		if i == b.N-1 {
			reportEval(b, evals)
		}
	}
}

// BenchmarkFig2Wave2D regenerates Figure 2(b).
func BenchmarkFig2Wave2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := experiment.Evaluate(experiment.Wave2D, []int{4, 8}, benchSeeds, benchScale)
		if i == b.N-1 {
			reportEval(b, evals)
		}
	}
}

// BenchmarkFig2Mol3D regenerates Figure 2(c): the internally imbalanced
// MD code under a background job the OS prefers 4:1.
func BenchmarkFig2Mol3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Mol3D needs a few more LB periods than the stencils to
		// converge under the 4x-preferred background job.
		evals := experiment.Evaluate(experiment.Mol3D, []int{4, 8}, benchSeeds, 0.4)
		if i == b.N-1 {
			reportEval(b, evals)
		}
	}
}

// BenchmarkFig4Energy regenerates Figure 4's quantities (average power
// and normalized energy overhead) for Wave2D.
func BenchmarkFig4Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := experiment.Evaluate(experiment.Wave2D, []int{8}, benchSeeds, benchScale)
		if i == b.N-1 {
			e := evals[0]
			b.ReportMetric(e.PowerNoLB, "noLB_W")
			b.ReportMetric(e.PowerLB, "LB_W")
			b.ReportMetric(e.EnergyOvhNoLB, "noLB_energy_ovh_%")
			b.ReportMetric(e.EnergyOvhLB, "LB_energy_ovh_%")
		}
	}
}

// BenchmarkFig1Timeline regenerates Figure 1: a 1-core job landing
// mid-run on one core of a 4-core Wave2D run without load balancing.
func BenchmarkFig1Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig1(benchScale)
		if i == b.N-1 {
			after := res.Trace.BusyFraction(3, trace.KindBackground, res.HogStart, res.AppFinish)
			b.ReportMetric(after*100, "bg_share_after_%")
		}
	}
}

// BenchmarkFig3Adaptation regenerates Figure 3: RefineLB adapting as
// interference moves between cores.
func BenchmarkFig3Adaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig3(0.5)
		if i == b.N-1 {
			b.ReportMetric(float64(res.Migrations), "migrations")
		}
	}
}

// ablationWorld builds a 4-core run whose internal imbalance leaves the
// hogged core lightly loaded: PE 3's chares cost 30% of the others, and a
// CPU hog occupies core 3. A background-blind balancer mistakes core 3
// for spare capacity and ships work into the interference; the paper's
// O_p term (Eq. 2) prevents exactly that.
func ablationRun(b *testing.B, strategy core.Strategy) float64 {
	b.Helper()
	eng := sim.NewEngine()
	mach := machine.New(eng, machine.Config{Nodes: 1, CoresPerNode: 4, CoreSpeed: 1})
	net := xnet.New(mach, xnet.DefaultConfig())
	rts := charm.NewRTS(charm.Config{
		Machine: mach, Net: net, Cores: []int{0, 1, 2, 3},
		Strategy: strategy, Name: "abl",
	})
	apps.NewStencilApp(rts, apps.StencilConfig{
		Array: "wave", GridW: 256, GridH: 128, CharesX: 16, CharesY: 8,
		Iters: 80, SyncEvery: 10, CostPerCell: 3e-6,
		CostScale: func(i int) float64 {
			// Blocks whose home PE is 3 (block placement: last quarter
			// of indices) are cheap.
			if i >= 96 {
				return 0.3
			}
			return 1
		},
		NewKernel: apps.NewWaveKernel(256, 128, 0.4),
	})
	interfere.StartHog(mach, interfere.HogConfig{Core: 3, Start: 0})
	rts.Start()
	for !rts.Finished() && eng.Now() < 1000 {
		if err := eng.RunUntil(eng.Now() + 1); err != nil {
			b.Fatal(err)
		}
	}
	return float64(rts.FinishTime())
}

// BenchmarkAblationBackgroundTerm (DESIGN.md A1): RefineLB versus the
// same refinement with the background-load term O_p removed.
func BenchmarkAblationBackgroundTerm(b *testing.B) {
	var aware, blind float64
	for i := 0; i < b.N; i++ {
		aware = ablationRun(b, &core.RefineLB{EpsilonFrac: 0.02})
		blind = ablationRun(b, &lb.RefineInternalLB{Inner: core.RefineLB{EpsilonFrac: 0.02}})
	}
	b.ReportMetric(aware, "aware_wall_s")
	b.ReportMetric(blind, "blind_wall_s")
}

// BenchmarkAblationRefineVsGreedy (DESIGN.md A2): migration counts and
// wall time of refinement versus from-scratch greedy reassignment.
func BenchmarkAblationRefineVsGreedy(b *testing.B) {
	var refineMigs, greedyMigs, refineWall, greedyWall float64
	for i := 0; i < b.N; i++ {
		r := experiment.Run(experiment.Scenario{
			App: experiment.Wave2D, Cores: 4, Strategy: experiment.Refine,
			BG: experiment.BGWave2D, Seed: 1, Scale: benchScale,
		})
		g := experiment.Run(experiment.Scenario{
			App: experiment.Wave2D, Cores: 4, Strategy: experiment.Greedy,
			BG: experiment.BGWave2D, Seed: 1, Scale: benchScale,
		})
		refineMigs, greedyMigs = float64(r.Migrations), float64(g.Migrations)
		refineWall, greedyWall = r.AppWall, g.AppWall
	}
	b.ReportMetric(refineMigs, "refine_migrations")
	b.ReportMetric(greedyMigs, "greedy_migrations")
	b.ReportMetric(refineWall, "refine_wall_s")
	b.ReportMetric(greedyWall, "greedy_wall_s")
}

// BenchmarkSweepRefineParams quantifies the sensitivity of RefineLB's
// design parameters (epsilon tolerance and LB period) called out in
// DESIGN.md.
func BenchmarkSweepRefineParams(b *testing.B) {
	var points []experiment.SweepPoint
	for i := 0; i < b.N; i++ {
		points = experiment.SweepRefineParams(experiment.Wave2D, 4,
			[]float64{0.02, 0.1}, []int{10, 40}, 1, benchScale)
	}
	for _, p := range points {
		if p.EpsilonFrac == 0.02 && p.SyncEvery == 10 {
			b.ReportMetric(p.PenaltyPct, "eps02_p10_penalty_%")
		}
		if p.EpsilonFrac == 0.1 && p.SyncEvery == 40 {
			b.ReportMetric(p.PenaltyPct, "eps10_p40_penalty_%")
		}
	}
}

// BenchmarkExtensionCloudChurn (paper §VI future work): tenant VMs
// arriving and departing across every application core, RefineLB versus
// noLB.
func BenchmarkExtensionCloudChurn(b *testing.B) {
	var no, lbw float64
	var migs int
	for i := 0; i < b.N; i++ {
		n := experiment.Run(experiment.Scenario{
			App: experiment.Wave2D, Cores: 8, Strategy: experiment.NoLB,
			BG: experiment.BGCloudChurn, Seed: 1, Scale: 0.5,
		})
		l := experiment.Run(experiment.Scenario{
			App: experiment.Wave2D, Cores: 8, Strategy: experiment.Refine,
			BG: experiment.BGCloudChurn, Seed: 1, Scale: 0.5,
		})
		no, lbw, migs = n.AppWall, l.AppWall, l.Migrations
	}
	b.ReportMetric(no, "noLB_wall_s")
	b.ReportMetric(lbw, "LB_wall_s")
	b.ReportMetric(float64(migs), "migrations")
}

// BenchmarkAblationMigrationCost (DESIGN.md A3, the paper's future-work
// variant): the cost-gated balancer versus always-migrate refinement.
func BenchmarkAblationMigrationCost(b *testing.B) {
	var refine, gated float64
	for i := 0; i < b.N; i++ {
		r := experiment.Run(experiment.Scenario{
			App: experiment.Wave2D, Cores: 4, Strategy: experiment.Refine,
			BG: experiment.BGWave2D, Seed: 1, Scale: benchScale,
		})
		c := experiment.Run(experiment.Scenario{
			App: experiment.Wave2D, Cores: 4, Strategy: experiment.CostAware,
			BG: experiment.BGWave2D, Seed: 1, Scale: benchScale,
		})
		refine, gated = r.AppWall, c.AppWall
	}
	b.ReportMetric(refine, "refine_wall_s")
	b.ReportMetric(gated, "costaware_wall_s")
}
